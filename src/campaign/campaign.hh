/**
 * @file
 * Multi-race campaign orchestration over one shared evaluation engine.
 *
 * The paper's methodology is a *campaign*: many (target, workload
 * suite, seed, search strategy) tuning runs, each an independent
 * search (iterated racing by default; any registered SearchStrategy
 * per task), whose aggregate throughput bounds how much validation is
 * affordable (§IV, 10K-100K experiments per run). PR 2 made one race
 * fast; this layer
 * runs a fleet of them concurrently over a single engine::EvalEngine,
 * so every task shares the same trace recordings and evaluation cache
 * while keeping its race-local budget and bit-identical trajectory:
 *
 *   - each CampaignTask races its own parameter space / model
 *     materializer / workload subset / seed, scored through one of the
 *     engine's cost domains;
 *   - the scheduler runs tasks on a small pool of racer threads, so
 *     whole racing-step batches from different tasks interleave at the
 *     engine and keep its ThreadPool saturated;
 *   - per-task and aggregate CampaignStats report experiments/s and
 *     the shared-cache hit rate;
 *   - an optional JSON checkpoint makes campaigns restartable:
 *     completed tasks are skipped on resume and their recorded
 *     RaceResults are bit-identical to the uninterrupted run.
 *
 * Determinism: a task's trajectory depends only on its own options and
 * the evaluator's (deterministic) values, never on scheduling -- so
 * serial vs concurrent execution, cold vs warm caches, and alone vs
 * in-campaign all produce bit-identical per-task results.
 */

#ifndef RACEVAL_CAMPAIGN_CAMPAIGN_HH
#define RACEVAL_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/checkpoint.hh"
#include "core/timing_model.hh"
#include "engine/engine.hh"
#include "tuner/strategy.hh"

namespace raceval::campaign
{

/** One racing task of a campaign. */
struct CampaignTask
{
    /** Unique task id, also the checkpoint key (e.g.
     *  "a53/control/seed1"). */
    std::string name;
    /** Raced parameter declarations (borrowed; must outlive run()). */
    const tuner::ParameterSpace *space = nullptr;
    /** Configuration -> model materializer for this task's hardware
     *  target preset (cache entries are shared between tasks whenever
     *  the materialized models coincide). */
    engine::ModelFn modelFn;
    /** Engine instance ids of this task's workload subset; racer
     *  instance t is engine instance instances[t]. */
    std::vector<size_t> instances;
    /** Engine cost domain scoring this task (0 = engine default). */
    size_t costDomain = 0;
    /** Timing-model family this task races (empty = the engine's
     *  default family). Tasks of different families share the engine's
     *  TraceBank and EvalCache; keys are family-salted, so their
     *  results never alias. */
    std::optional<core::ModelFamily> family;
    /** Registered search strategy driving this task ("" = the default,
     *  irace). Covered by the checkpoint task fingerprint via the
     *  strategy's salt, so changing a task's strategy invalidates its
     *  checkpointed result -- with the one documented exception that
     *  irace (explicit or defaulted) contributes nothing, keeping
     *  pre-strategy checkpoints valid. */
    std::string strategy;
    /** Registered target board this task validates against ("" = not
     *  target-scoped). Covered by the checkpoint task fingerprint via
     *  the board's fingerprint salt, with the same asymmetry as the
     *  strategy: the zero-salt pre-scenario boards (cortex-a53 /
     *  cortex-a72, explicit or via "") mix nothing, so pre-scenario
     *  checkpoints stay valid for exactly those tasks. */
    std::string target;
    /** Racing knobs: budget, seed replicate, elimination params. */
    tuner::RacerOptions racer;
    /** Seed configurations (e.g. the target's public-info model). */
    std::vector<tuner::Configuration> initialCandidates;
};

/** Campaign scheduling knobs. */
struct CampaignOptions
{
    /** Concurrent racer threads (0 = one per task). Results are
     *  bit-identical at any concurrency; this only trades memory and
     *  scheduling overhead against engine saturation. */
    unsigned concurrency = 4;
    /** Checkpoint file ("" = no checkpointing). Existing entries
     *  whose task fingerprint still matches are restored instead of
     *  re-raced; the file is rewritten after every task completion. */
    std::string checkpointPath;
    /** Warm-start cache file ("" = none): a v3 EvalCache file (see
     *  EvalEngine::saveCache) mmap'd read-only into the shared engine
     *  at run() start, so the whole task fleet serves repeat
     *  experiments from one page-cache copy without loading it onto
     *  the heap. The campaign never writes this file; produce it with
     *  saveCache() from a previous run. Missing or incompatible files
     *  warn and race cold. */
    std::string warmStartPath;
    /** Narrate task completions via inform(). */
    bool verbose = false;
};

/** Outcome of one task. */
struct TaskOutcome
{
    std::string name;
    tuner::RaceResult result;
    /** Wall time of this task's race (0 when restored). */
    double wallSeconds = 0.0;
    /** True when restored from the checkpoint, not re-raced. */
    bool fromCheckpoint = false;

    /** @return budget-charged experiments per second of task wall
     *  time (0 when restored). */
    double
    experimentsPerSecond() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(result.experimentsUsed) / wallSeconds
            : 0.0;
    }
};

/** Aggregate campaign report. */
struct CampaignStats
{
    unsigned tasksTotal = 0;
    unsigned tasksRaced = 0;          //!< raced during this run()
    unsigned tasksFromCheckpoint = 0; //!< restored, not re-raced
    /** Budget charged by the tasks raced this run. */
    uint64_t experiments = 0;
    /** Whole-campaign wall time (all tasks, all threads). */
    double wallSeconds = 0.0;
    /** Shared-engine snapshot at campaign end. */
    engine::EngineStats engine;

    /** @return aggregate campaign throughput: budget-charged
     *  experiments per second of campaign wall time. */
    double
    experimentsPerSecond() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(experiments) / wallSeconds : 0.0;
    }

    /** Multi-line human-readable report. */
    std::string summary() const;

    /** JSON object (for the --json bench blobs). */
    std::string json() const;
};

/** What run() returns: outcomes in addTask order + aggregate stats. */
struct CampaignResult
{
    std::vector<TaskOutcome> tasks;
    CampaignStats stats;
};

/**
 * Content fingerprint of a task definition (racer options, workload
 * subset by program content, space shape, materializer probes, initial
 * candidates). Stamped into checkpoint entries so a resumed campaign
 * only reuses results whose task definition is unchanged.
 */
uint64_t taskFingerprint(const engine::EvalEngine &engine,
                         const CampaignTask &task);

/** The multi-race orchestrator. */
class CampaignRunner
{
  public:
    /**
     * @param engine the shared evaluation engine; every task's
     *        instances and cost domain must already be registered.
     * @param options scheduling knobs.
     */
    explicit CampaignRunner(engine::EvalEngine &engine,
                            CampaignOptions options = {});

    /** Add a task (validated: unique name, non-empty workload subset,
     *  registered instances/domain, a space and a model fn). */
    void addTask(CampaignTask task);

    /** @return tasks added so far. */
    size_t numTasks() const { return tasks.size(); }

    /**
     * Run every task (restoring checkpointed ones) and return the
     * outcomes in addTask order. May be called once per runner.
     */
    CampaignResult run();

  private:
    void runTask(size_t index, uint64_t fingerprint,
                 std::vector<TaskOutcome> &outcomes,
                 std::vector<CheckpointEntry> &completed);

    engine::EvalEngine &engine;
    CampaignOptions opts;
    std::vector<CampaignTask> tasks;
    /** Serializes outcome recording and checkpoint rewriting. */
    std::mutex mutex;
    bool ran = false;
};

} // namespace raceval::campaign

#endif // RACEVAL_CAMPAIGN_CAMPAIGN_HH
