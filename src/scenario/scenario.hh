/**
 * @file
 * The scenario registry: one declarative seam between "a validation
 * target" and everything that consumes one.
 *
 * The paper validates against exactly two boards (Cortex-A53/A72) and
 * two program suites (Table I ubenches for tuning, Table II SPEC
 * stand-ins held out), and before this layer existed those four names
 * were hardwired through the flow, the raced-space bindings, the
 * campaign and every bench driver. A scenario is the pairing the paper
 * treats as implicit: a TargetBoard (hidden ground truth + public-info
 * baseline + the model families allowed to claim they model it) and a
 * WorkloadSuite (a named program family with a role: `tuning` programs
 * may be raced, `held-out` programs may only be measured and reported,
 * `firmware` is the microcontroller-shaped family). Drivers resolve
 * both by name -- the same move core::TimingModelRegistry made for
 * model families and tuner::SearchStrategyRegistry made for search
 * strategies.
 */

#ifndef RACEVAL_SCENARIO_SCENARIO_HH
#define RACEVAL_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/timing_model.hh"
#include "hw/machine.hh"
#include "isa/program.hh"

namespace raceval::scenario
{

/**
 * Per-target clamping of the raced parameter space, consumed by
 * validate::SniperParamSpace. A default-constructed clamp reproduces
 * the paper's A-class space *exactly* -- the binding table's
 * declaration order is raced-trajectory ABI, and the A53/A72 fig4/fig5
 * results must stay bit-identical.
 */
struct SpaceClamp
{
    /** False drops every l2_* knob (the board has no L2 to race). */
    bool hasL2 = true;
    /// @name Level overrides (empty = keep the default level list)
    /// @{
    std::vector<int64_t> mispredictPenaltyLevels; //!< short pipelines
    std::vector<int64_t> btbBitsLevels;           //!< small BTBs
    std::vector<int64_t> dramLatencyLevels;       //!< TCM vs DDR
    std::vector<int64_t> dramCyclesPerLineLevels;
    /// @}
};

/**
 * One validation target: everything the flow needs to race a model
 * against a board, minus any A53/A72 assumption.
 */
struct TargetBoard
{
    const char *name = "";        //!< stable CLI/report tag
    const char *description = ""; //!< one-line --list blurb
    /** Which detailed hardware machine measures the ground truth. */
    bool outOfOrderHw = false;
    /** Family drivers pick when the user names only the target. */
    core::ModelFamily defaultFamily = core::ModelFamily::InOrder;
    /** Model families allowed to validate against this board. */
    std::vector<core::ModelFamily> families;
    /**
     * Cache-key / checkpoint salt for this target. The pre-scenario
     * A53/A72 targets deliberately use salt 0 so that every
     * checkpoint, warm EvalCache file and raced trajectory recorded
     * before this layer existed stays valid (the same back-compat rule
     * the default search strategy follows). Every target added since
     * must carry a distinct nonzero salt, stable across versions --
     * it is what keeps a shared warm cache from aliasing two boards
     * that happen to share a model family.
     */
    uint64_t fingerprintSalt = 0;
    /** Hidden ground truth; measured, never read (black-box rule). */
    hw::HwParams (*secret)() = nullptr;
    /** Steps #1-#3 public-information baseline. */
    core::CoreParams (*publicInfo)() = nullptr;
    /** Raced-space clamping for this board's hardware class. */
    SpaceClamp clamp;

    /** @return true when @p family may validate against this board. */
    bool allows(core::ModelFamily family) const;
};

/** What a workload suite is for (the paper's hold-out contract). */
enum class WorkloadRole : uint8_t
{
    Tuning,  //!< raced during step #4 (Table I ubenches)
    HeldOut, //!< measured + reported only, never raced (Table II)
    Firmware //!< microcontroller-shaped long traces (tunable)
};

/** @return stable display name of a role. */
const char *workloadRoleName(WorkloadRole role);

/** One named program family with its hold-out role. */
struct WorkloadSuite
{
    const char *name = "";        //!< stable CLI tag
    const char *description = "";
    WorkloadRole role = WorkloadRole::Tuning;
    size_t (*count)() = nullptr;
    const char *(*nameAt)(size_t index) = nullptr;
    isa::Program (*buildAt)(size_t index) = nullptr;
};

/**
 * Declaration-ordered registry of targets and workload suites. The
 * built-in scenarios (cortex-a53, cortex-a72, cortex-m-class; ubench,
 * spec2017, firmware) are pre-registered; registerTarget() /
 * registerSuite() are the extension points.
 */
class ScenarioRegistry
{
  public:
    /** @return the process-wide registry. */
    static ScenarioRegistry &instance();

    /** @return the target named @p name, or nullptr when unknown. */
    const TargetBoard *findTarget(const std::string &name) const;

    /** @return all registered targets, declaration order. */
    const std::vector<TargetBoard> &targets() const { return boards; }

    /** Register a target (fatal on duplicate name, or on a duplicate
     *  or zero salt -- only the two pre-scenario boards are grand-
     *  fathered at salt 0). */
    void registerTarget(TargetBoard board);

    /** @return the suite named @p name, or nullptr when unknown. */
    const WorkloadSuite *findSuite(const std::string &name) const;

    /** @return all registered suites, declaration order. */
    const std::vector<WorkloadSuite> &workloadSuites() const
    {
        return suites;
    }

    /** Register a workload suite (fatal on duplicate name). */
    void registerSuite(WorkloadSuite suite);

  private:
    ScenarioRegistry();
    std::vector<TargetBoard> boards;
    std::vector<WorkloadSuite> suites;
};

/** @return a registered target; fatal with the known names on miss. */
const TargetBoard &targetOrDie(const std::string &name);

/** @return a registered suite; fatal with the known names on miss. */
const WorkloadSuite &suiteOrDie(const std::string &name);

/** Stable default target of a model family (the pre-scenario mapping:
 *  OoO validated the A72-class board, everything else the A53). */
const TargetBoard &defaultTargetFor(core::ModelFamily family);

} // namespace raceval::scenario

#endif // RACEVAL_SCENARIO_SCENARIO_HH
