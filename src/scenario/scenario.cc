#include "scenario/scenario.hh"

#include <algorithm>

#include "common/log.hh"
#include "ubench/ubench.hh"
#include "workload/firmware.hh"
#include "workload/workload.hh"

namespace raceval::scenario
{

namespace
{

// --- workload suite adapters --------------------------------------------

size_t
ubenchCount()
{
    return ubench::all().size();
}

const char *
ubenchNameAt(size_t index)
{
    return ubench::all()[index].name;
}

isa::Program
ubenchBuildAt(size_t index)
{
    return ubench::build(ubench::all()[index]);
}

size_t
specCount()
{
    return workload::all().size();
}

const char *
specNameAt(size_t index)
{
    return workload::all()[index].name;
}

isa::Program
specBuildAt(size_t index)
{
    return workload::build(workload::all()[index]);
}

size_t
firmwareCount()
{
    return workload::firmware::all().size();
}

const char *
firmwareNameAt(size_t index)
{
    return workload::firmware::all()[index].name;
}

isa::Program
firmwareBuildAt(size_t index)
{
    return workload::firmware::build(workload::firmware::all()[index]);
}

} // namespace

bool
TargetBoard::allows(core::ModelFamily family) const
{
    return std::find(families.begin(), families.end(), family)
        != families.end();
}

const char *
workloadRoleName(WorkloadRole role)
{
    switch (role) {
      case WorkloadRole::Tuning: return "tuning";
      case WorkloadRole::HeldOut: return "held-out";
      case WorkloadRole::Firmware: return "firmware";
      default: panic("bad workload role %d", static_cast<int>(role));
    }
}

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

ScenarioRegistry::ScenarioRegistry()
{
    // The two pre-scenario boards. Salt 0 is deliberate back-compat:
    // every checkpoint and warm EvalCache file written before this
    // layer existed must keep resolving to the same keys (tested in
    // test_scenario.cc). Their model families never overlap, so the
    // family salt already keeps their cache entries apart.
    TargetBoard a53;
    a53.name = "cortex-a53";
    a53.description =
        "RK3399 'little' cluster: dual-issue in-order A-class board";
    a53.outOfOrderHw = false;
    a53.defaultFamily = core::ModelFamily::InOrder;
    a53.families = {core::ModelFamily::InOrder,
                    core::ModelFamily::Interval};
    a53.fingerprintSalt = 0;
    a53.secret = hw::secretA53;
    a53.publicInfo = core::publicInfoA53;
    boards.push_back(std::move(a53));

    TargetBoard a72;
    a72.name = "cortex-a72";
    a72.description =
        "RK3399 'big' cluster: 3-wide out-of-order A-class board";
    a72.outOfOrderHw = true;
    a72.defaultFamily = core::ModelFamily::Ooo;
    a72.families = {core::ModelFamily::Ooo};
    a72.fingerprintSalt = 0;
    a72.secret = hw::secretA72;
    a72.publicInfo = core::publicInfoA72;
    boards.push_back(std::move(a72));

    // The microcontroller-class scenario (ROADMAP: scenario
    // diversity). Nonzero salt ("M-class1" in ASCII) because its
    // in-order hardware shares model families with the A53 board --
    // without it a shared warm cache could alias the two. All three
    // families may model it: the point of the scenario is stressing
    // the tuner where the paper never went.
    TargetBoard mclass;
    mclass.name = "cortex-m-class";
    mclass.description =
        "microcontroller-class board: single-issue, no L2, flat "
        "TCM-like memory, tiny BTB";
    mclass.outOfOrderHw = false;
    mclass.defaultFamily = core::ModelFamily::InOrder;
    mclass.families = {core::ModelFamily::InOrder, core::ModelFamily::Ooo,
                       core::ModelFamily::Interval};
    mclass.fingerprintSalt = 0x4d2d636c61737331ull; // "M-class1"
    mclass.secret = hw::secretCortexM;
    mclass.publicInfo = core::publicInfoCortexM;
    mclass.clamp.hasL2 = false;
    // Short-pipeline flush costs, tiny BTBs, wait-stated SRAM instead
    // of DDR: the default A-class levels do not even contain the
    // M-class ground truth, so the clamp is what makes the race
    // winnable (and keeps it from burning budget on DDR latencies).
    mclass.clamp.mispredictPenaltyLevels = {1, 2, 3, 4, 5, 6, 8};
    mclass.clamp.btbBitsLevels = {3, 4, 5, 6, 7, 8};
    mclass.clamp.dramLatencyLevels = {4, 6, 8, 9, 12, 16, 24};
    mclass.clamp.dramCyclesPerLineLevels = {1, 2, 3, 4, 6};
    boards.push_back(std::move(mclass));

    WorkloadSuite ub;
    ub.name = "ubench";
    ub.description = "Table I micro-benchmarks (the tuning suite)";
    ub.role = WorkloadRole::Tuning;
    ub.count = ubenchCount;
    ub.nameAt = ubenchNameAt;
    ub.buildAt = ubenchBuildAt;
    suites.push_back(ub);

    WorkloadSuite spec;
    spec.name = "spec2017";
    spec.description =
        "Table II SPEC CPU2017 stand-ins (held out from tuning)";
    spec.role = WorkloadRole::HeldOut;
    spec.count = specCount;
    spec.nameAt = specNameAt;
    spec.buildAt = specBuildAt;
    suites.push_back(spec);

    WorkloadSuite fw;
    fw.name = "firmware";
    fw.description =
        "firmware-shaped long traces (dispatch loop, timer wheel, "
        "list walk)";
    fw.role = WorkloadRole::Firmware;
    fw.count = firmwareCount;
    fw.nameAt = firmwareNameAt;
    fw.buildAt = firmwareBuildAt;
    suites.push_back(fw);
}

const TargetBoard *
ScenarioRegistry::findTarget(const std::string &name) const
{
    for (const TargetBoard &board : boards) {
        if (name == board.name)
            return &board;
    }
    return nullptr;
}

void
ScenarioRegistry::registerTarget(TargetBoard board)
{
    RV_ASSERT(board.name != nullptr && board.name[0] != '\0',
              "scenario: target needs a name");
    RV_ASSERT(board.secret != nullptr && board.publicInfo != nullptr,
              "scenario: target '%s' needs secret + publicInfo",
              board.name);
    RV_ASSERT(!board.families.empty(),
              "scenario: target '%s' allows no model family",
              board.name);
    RV_ASSERT(board.fingerprintSalt != 0,
              "scenario: target '%s' needs a nonzero fingerprint salt "
              "(salt 0 is reserved for the pre-scenario boards)",
              board.name);
    for (const TargetBoard &existing : boards) {
        RV_ASSERT(std::string(existing.name) != board.name,
                  "scenario: duplicate target name '%s'", board.name);
        RV_ASSERT(existing.fingerprintSalt != board.fingerprintSalt,
                  "scenario: target '%s' reuses the salt of '%s'",
                  board.name, existing.name);
    }
    boards.push_back(std::move(board));
}

const WorkloadSuite *
ScenarioRegistry::findSuite(const std::string &name) const
{
    for (const WorkloadSuite &suite : suites) {
        if (name == suite.name)
            return &suite;
    }
    return nullptr;
}

void
ScenarioRegistry::registerSuite(WorkloadSuite suite)
{
    RV_ASSERT(suite.name != nullptr && suite.name[0] != '\0',
              "scenario: suite needs a name");
    RV_ASSERT(suite.count != nullptr && suite.nameAt != nullptr
                  && suite.buildAt != nullptr,
              "scenario: suite '%s' needs count/nameAt/buildAt",
              suite.name);
    for (const WorkloadSuite &existing : suites) {
        RV_ASSERT(std::string(existing.name) != suite.name,
                  "scenario: duplicate suite name '%s'", suite.name);
    }
    suites.push_back(std::move(suite));
}

namespace
{

std::string
knownNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

const TargetBoard &
targetOrDie(const std::string &name)
{
    const TargetBoard *board =
        ScenarioRegistry::instance().findTarget(name);
    if (!board) {
        std::vector<std::string> names;
        for (const TargetBoard &b : ScenarioRegistry::instance().targets())
            names.push_back(b.name);
        fatal("unknown target '%s' (known: %s)", name.c_str(),
              knownNames(names).c_str());
    }
    return *board;
}

const WorkloadSuite &
suiteOrDie(const std::string &name)
{
    const WorkloadSuite *suite =
        ScenarioRegistry::instance().findSuite(name);
    if (!suite) {
        std::vector<std::string> names;
        for (const WorkloadSuite &s :
             ScenarioRegistry::instance().workloadSuites())
            names.push_back(s.name);
        fatal("unknown workload suite '%s' (known: %s)", name.c_str(),
              knownNames(names).c_str());
    }
    return *suite;
}

const TargetBoard &
defaultTargetFor(core::ModelFamily family)
{
    return targetOrDie(family == core::ModelFamily::Ooo ? "cortex-a72"
                                                        : "cortex-a53");
}

} // namespace raceval::scenario
