#include "obs/metrics.hh"

#include <algorithm>

#include "common/json_writer.hh"
#include "common/log.hh"

namespace raceval::obs
{

// ------------------------------------------------------------- Histogram

double
Histogram::percentile(double p) const
{
    RV_ASSERT(p >= 0.0 && p <= 100.0, "histogram percentile %g", p);
    // A relaxed copy of the buckets: concurrent record()s may be
    // partially visible, which only perturbs the estimate by the
    // in-flight samples.
    std::array<uint64_t, kBuckets> counts;
    uint64_t n = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        counts[b] = buckets[b].load(std::memory_order_relaxed);
        n += counts[b];
    }
    if (n == 0)
        return 0.0;

    // Nearest-rank target, then linear interpolation across the
    // winning bucket's value range by the rank's position in it.
    uint64_t target = static_cast<uint64_t>(p / 100.0
                                            * static_cast<double>(n));
    if (target >= n)
        target = n - 1;
    uint64_t below = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        if (!counts[b])
            continue;
        if (below + counts[b] > target) {
            double frac = static_cast<double>(target - below)
                / static_cast<double>(counts[b]);
            double lo = static_cast<double>(bucketLo(b));
            double hi = static_cast<double>(bucketHi(b));
            return lo + frac * (hi - lo);
        }
        below += counts[b];
    }
    return static_cast<double>(bucketHi(kBuckets - 1)); // unreachable
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    out.count = total.load(std::memory_order_relaxed);
    out.max = maxSeen.load(std::memory_order_relaxed);
    if (out.count) {
        out.mean = static_cast<double>(
                       sum.load(std::memory_order_relaxed))
            / static_cast<double>(out.count);
        out.p50 = percentile(50.0);
        out.p90 = percentile(90.0);
        out.p99 = percentile(99.0);
    }
    return out;
}

void
Histogram::reset() noexcept
{
    for (auto &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    maxSeen.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------- MetricRegistry

MetricRegistry &
MetricRegistry::instance()
{
    // Intentionally immortal (never destroyed): consumers living in
    // static storage -- a bench driver's global engine, say -- release
    // their SourceHandles during exit teardown, in an order the
    // registry cannot control. A function-local static registry could
    // be destroyed first and turn those releases into use-after-free.
    static MetricRegistry *registry = new MetricRegistry();
    return *registry;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricRegistry::SourceHandle
MetricRegistry::addSource(std::string prefix, SourceFn fn)
{
    std::lock_guard<std::mutex> lock(mutex);
    uint64_t id = nextSourceId++;
    sources.emplace(id,
                    std::make_pair(std::move(prefix), std::move(fn)));
    return SourceHandle(this, id);
}

void
MetricRegistry::SourceHandle::release()
{
    if (!registry)
        return;
    std::lock_guard<std::mutex> lock(registry->mutex);
    registry->sources.erase(id);
    registry = nullptr;
    id = 0;
}

MetricRegistry::Snapshot
MetricRegistry::snapshot() const
{
    // Copy the source closures out, then pull them without the
    // registry lock: sources take their own locks (e.g. the engine's
    // TraceBank mutex) and must be free to register metrics while we
    // wait on them.
    std::vector<std::pair<std::string, SourceFn>> pulls;
    Snapshot out;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &[name, c] : counters)
            out.counters.emplace_back(name, c->value());
        for (const auto &[name, g] : gauges)
            out.gauges.emplace_back(name, g->value());
        for (const auto &[name, h] : histograms)
            out.histograms.emplace_back(name, h->snapshot());
        for (const auto &[id, source] : sources)
            pulls.push_back(source);
    }
    for (auto &[prefix, fn] : pulls)
        out.sources.emplace_back(prefix, fn());
    return out;
}

std::string
MetricRegistry::json() const
{
    Snapshot snap = snapshot();
    JsonWriter w;
    w.beginObject();
    w.beginObject("counters");
    for (const auto &[name, v] : snap.counters)
        w.field(name.c_str(), v);
    w.endObject();
    w.beginObject("gauges");
    for (const auto &[name, v] : snap.gauges)
        w.field(name.c_str(), v);
    w.endObject();
    w.beginObject("histograms");
    for (const auto &[name, h] : snap.histograms) {
        w.beginObject(name.c_str())
            .field("count", h.count)
            .field("mean", h.mean)
            .field("max", h.max)
            .field("p50", h.p50)
            .field("p90", h.p90)
            .field("p99", h.p99)
            .endObject();
    }
    w.endObject();
    w.beginArray("sources");
    for (const auto &[prefix, samples] : snap.sources) {
        w.beginObject().field("name", prefix).beginObject("samples");
        for (const Sample &sample : samples)
            w.field(sample.name.c_str(), sample.value);
        w.endObject().endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
MetricRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, g] : gauges)
        g->set(0);
    for (auto &[name, h] : histograms)
        h->reset();
    sources.clear();
}

} // namespace raceval::obs
