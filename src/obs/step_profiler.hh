/**
 * @file
 * Opt-in sampled phase-attribution profiler for the timing cores'
 * per-instruction step() bodies.
 *
 * The per-instruction cost of replay is the product the whole engine
 * sells, so shaving it has to stay profile-guided: this module
 * attributes step() time to the pipeline phases (fetch / dispatch /
 * issue / mem / branch / retire) per core family, using rdtsc-style
 * scoped timers on a 1-in-2^k sample of instructions.
 *
 * Cost discipline mirrors obs/metrics.hh:
 *
 *   - disabled (the default), the segment loops check
 *     stepProfilingEnabled() once per *segment* and instantiate the
 *     un-profiled step body, whose StepTimer<false> is an empty type
 *     the optimizer deletes -- zero per-instruction cost;
 *   - enabled, un-sampled instructions pay one relaxed fetch_add plus
 *     a thread-local decimation counter; sampled instructions pay one
 *     timestamp read per phase boundary;
 *   - under -DRACEVAL_DISABLE_OBS stepProfilingEnabled() is constant
 *     false, so the profiled instantiation is dead code (compiled out
 *     like the RV_* macros).
 *
 * Surfacing: `--profile` on the bench drivers (bench/bench_common.hh)
 * enables it; the accumulated table is printed at exit, embedded in
 * the --json blob, and exported through the metrics registry as a
 * "step_profile" pull source.
 */

#ifndef RACEVAL_OBS_STEP_PROFILER_HH
#define RACEVAL_OBS_STEP_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace raceval::obs
{

/** Phases of one timing-model step(), in hot-path order. */
enum class StepPhase : uint8_t
{
    Fetch,    //!< front-end fetch / icache / fetch bubbles
    Dispatch, //!< window gating (ROB/IQ/LQ/SQ rings, slot advance)
    Issue,    //!< operand readiness + FU reservation/latency
    Mem,      //!< MSHR scan, cache access, store drain, forwarding
    Branch,   //!< predictor update + redirect
    Retire,   //!< retire ring, writeback, cursor advance

    NumPhases
};

/** Number of step phases. */
constexpr size_t numStepPhases = static_cast<size_t>(StepPhase::NumPhases);

/// Core-family rows of the attribution table. Plain indices rather
/// than core::ModelFamily so obs stays free of core dependencies.
/// @{
constexpr unsigned stepFamilyInOrder = 0;
constexpr unsigned stepFamilyOoo = 1;
constexpr unsigned stepFamilyInterval = 2;
constexpr size_t numStepFamilies = 3;
/// @}

/** @return phase name, e.g. "issue". */
const char *stepPhaseName(StepPhase phase);

/** @return family row name, e.g. "ooo". */
const char *stepFamilyName(unsigned family);

namespace detail
{

struct StepPhaseCell
{
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> samples{0};
};

extern std::atomic<bool> gStepProfilingOn;
extern std::atomic<uint32_t> gStepSampleMask;
extern StepPhaseCell gStepCells[numStepFamilies][numStepPhases];
/** All steps executed by profiled segment loops (sampled or not). */
extern std::atomic<uint64_t> gStepSteps[numStepFamilies];
/** Steps that actually carried timers. */
extern std::atomic<uint64_t> gStepSampled[numStepFamilies];

/** @return a monotonic cycle-counter timestamp (rdtsc / cntvct_el0;
 *  steady_clock fallback). Units are calibrated against wall time at
 *  report time, never on the hot path. */
uint64_t stepTick();

/** Thread-local 1-in-(mask+1) decimation. */
inline bool
stepSampleThisStep()
{
    thread_local uint32_t ctr = 0;
    return (++ctr & gStepSampleMask.load(std::memory_order_relaxed))
        == 0;
}

} // namespace detail

/** @return true when step profiling is on. The segment loops key
 *  their step-body instantiation off this once per segment. */
inline bool
stepProfilingEnabled()
{
#ifdef RACEVAL_DISABLE_OBS
    return false;
#else
    return detail::gStepProfilingOn.load(std::memory_order_relaxed);
#endif
}

/**
 * Enable / disable step profiling.
 *
 * Enabling zeroes the accumulators, records a calibration anchor for
 * tick-to-nanosecond conversion and registers the "step_profile"
 * metrics-registry source; disabling unregisters it (accumulated data
 * stays readable until the next enable).
 *
 * @param on new state.
 * @param sample_shift sample 1 in 2^sample_shift instructions.
 */
void setStepProfiling(bool on, unsigned sample_shift = 6);

/** Human-readable per-family x per-phase cost table; empty string
 *  when nothing was sampled. */
std::string stepProfileReport();

/** Compact JSON object of the same data (embedded in --json blobs). */
std::string stepProfileJson();

/**
 * Scoped phase-boundary timer over one step(). phase(p) closes the
 * currently open phase and opens p; the destructor closes the last
 * one. The inactive specialization is an empty no-op so the
 * un-profiled step instantiation pays nothing for the markers.
 */
template <bool Active>
class StepTimer
{
  public:
    explicit StepTimer(unsigned family) { (void)family; }
    void phase(StepPhase p) { (void)p; }
};

template <>
class StepTimer<true>
{
  public:
    explicit StepTimer(unsigned family)
        : fam(family), sampled(detail::stepSampleThisStep())
    {
        detail::gStepSteps[fam].fetch_add(1,
                                          std::memory_order_relaxed);
        if (sampled)
            last = detail::stepTick();
    }

    void
    phase(StepPhase p)
    {
        if (!sampled)
            return;
        uint64_t now = detail::stepTick();
        flush(now);
        cur = static_cast<int>(p);
        last = now;
    }

    ~StepTimer()
    {
        if (!sampled)
            return;
        flush(detail::stepTick());
        detail::gStepSampled[fam].fetch_add(
            1, std::memory_order_relaxed);
    }

    StepTimer(const StepTimer &) = delete;
    StepTimer &operator=(const StepTimer &) = delete;

  private:
    void
    flush(uint64_t now)
    {
        if (cur < 0)
            return;
        detail::StepPhaseCell &cell = detail::gStepCells[fam][cur];
        cell.ticks.fetch_add(now - last, std::memory_order_relaxed);
        cell.samples.fetch_add(1, std::memory_order_relaxed);
    }

    unsigned fam;
    bool sampled;
    int cur = -1;
    uint64_t last = 0;
};

} // namespace raceval::obs

#endif // RACEVAL_OBS_STEP_PROFILER_HH
