#include "obs/step_profiler.hh"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/log.hh"
#include "obs/metrics.hh"

namespace raceval::obs
{

namespace detail
{

std::atomic<bool> gStepProfilingOn{false};
std::atomic<uint32_t> gStepSampleMask{63};
StepPhaseCell gStepCells[numStepFamilies][numStepPhases];
std::atomic<uint64_t> gStepSteps[numStepFamilies];
std::atomic<uint64_t> gStepSampled[numStepFamilies];

uint64_t
stepTick()
{
#if defined(__x86_64__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<uint64_t>(std::chrono::steady_clock::now()
                                     .time_since_epoch()
                                     .count());
#endif
}

} // namespace detail

namespace
{

using detail::gStepCells;
using detail::gStepSampled;
using detail::gStepSteps;

/** Calibration anchor taken at enable time; ticksPerNs() divides the
 *  tick and wall deltas accumulated since, so no per-sample clock
 *  syscalls are needed and frequency is measured over the profiled
 *  region itself. */
std::mutex gAnchorMutex;
uint64_t gAnchorTick = 0;
uint64_t gAnchorNs = 0;
MetricRegistry::SourceHandle gSourceHandle;

uint64_t
wallNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
ticksPerNs()
{
    std::lock_guard<std::mutex> lock(gAnchorMutex);
    uint64_t dt = detail::stepTick() - gAnchorTick;
    uint64_t dn = wallNs() - gAnchorNs;
    if (dn == 0 || dt == 0)
        return 1.0;
    return static_cast<double>(dt) / static_cast<double>(dn);
}

struct PhaseRow
{
    uint64_t ticks = 0;
    uint64_t samples = 0;
};

struct FamilyRows
{
    uint64_t steps = 0;
    uint64_t sampled = 0;
    PhaseRow phases[numStepPhases];
    uint64_t totalTicks = 0;
};

/** Relaxed snapshot of every accumulator. */
void
snapshotRows(FamilyRows out[numStepFamilies])
{
    for (size_t f = 0; f < numStepFamilies; ++f) {
        out[f].steps = gStepSteps[f].load(std::memory_order_relaxed);
        out[f].sampled =
            gStepSampled[f].load(std::memory_order_relaxed);
        out[f].totalTicks = 0;
        for (size_t p = 0; p < numStepPhases; ++p) {
            out[f].phases[p].ticks =
                gStepCells[f][p].ticks.load(std::memory_order_relaxed);
            out[f].phases[p].samples =
                gStepCells[f][p].samples.load(
                    std::memory_order_relaxed);
            out[f].totalTicks += out[f].phases[p].ticks;
        }
    }
}

std::vector<Sample>
profileSamples()
{
    FamilyRows rows[numStepFamilies];
    snapshotRows(rows);
    double tpns = ticksPerNs();
    std::vector<Sample> out;
    for (size_t f = 0; f < numStepFamilies; ++f) {
        const FamilyRows &r = rows[f];
        if (r.sampled == 0)
            continue;
        double denom = static_cast<double>(r.sampled) * tpns;
        std::string fam = stepFamilyName(static_cast<unsigned>(f));
        for (size_t p = 0; p < numStepPhases; ++p) {
            if (r.phases[p].samples == 0)
                continue;
            out.push_back(
                {fam + "."
                     + stepPhaseName(static_cast<StepPhase>(p))
                     + "_ns_per_inst",
                 static_cast<double>(r.phases[p].ticks) / denom});
        }
        out.push_back({fam + ".ns_per_inst",
                       static_cast<double>(r.totalTicks) / denom});
        out.push_back(
            {fam + ".steps", static_cast<double>(r.steps)});
        out.push_back(
            {fam + ".sampled", static_cast<double>(r.sampled)});
    }
    return out;
}

} // namespace

const char *
stepPhaseName(StepPhase phase)
{
    static const char *names[] = {"fetch",  "dispatch", "issue",
                                  "mem",    "branch",   "retire"};
    static_assert(sizeof(names) / sizeof(names[0]) == numStepPhases,
                  "step phase name table out of sync");
    size_t idx = static_cast<size_t>(phase);
    RV_ASSERT(idx < numStepPhases, "stepPhaseName: bad phase %zu", idx);
    return names[idx];
}

const char *
stepFamilyName(unsigned family)
{
    static const char *names[] = {"inorder", "ooo", "interval"};
    static_assert(sizeof(names) / sizeof(names[0]) == numStepFamilies,
                  "step family name table out of sync");
    RV_ASSERT(family < numStepFamilies,
              "stepFamilyName: bad family %u", family);
    return names[family];
}

void
setStepProfiling(bool on, unsigned sample_shift)
{
    if (!on) {
        detail::gStepProfilingOn.store(false,
                                       std::memory_order_relaxed);
        gSourceHandle.release();
        return;
    }
    RV_ASSERT(sample_shift < 31,
              "setStepProfiling: shift %u too large", sample_shift);
    for (size_t f = 0; f < numStepFamilies; ++f) {
        gStepSteps[f].store(0, std::memory_order_relaxed);
        gStepSampled[f].store(0, std::memory_order_relaxed);
        for (size_t p = 0; p < numStepPhases; ++p) {
            gStepCells[f][p].ticks.store(0,
                                         std::memory_order_relaxed);
            gStepCells[f][p].samples.store(
                0, std::memory_order_relaxed);
        }
    }
    detail::gStepSampleMask.store((1u << sample_shift) - 1,
                                  std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(gAnchorMutex);
        gAnchorTick = detail::stepTick();
        gAnchorNs = wallNs();
    }
#ifndef RACEVAL_DISABLE_OBS
    gSourceHandle = MetricRegistry::instance().addSource(
        "step_profile", [] { return profileSamples(); });
#endif
    detail::gStepProfilingOn.store(true, std::memory_order_relaxed);
}

std::string
stepProfileReport()
{
    FamilyRows rows[numStepFamilies];
    snapshotRows(rows);
    double tpns = ticksPerNs();
    uint32_t mask =
        detail::gStepSampleMask.load(std::memory_order_relaxed);

    char line[160];
    std::string out;
    bool any = false;
    for (size_t f = 0; f < numStepFamilies; ++f) {
        const FamilyRows &r = rows[f];
        if (r.sampled == 0)
            continue;
        if (!any) {
            snprintf(line, sizeof(line),
                     "step profile (1 in %u instructions sampled):\n"
                     "  %-9s %-9s %9s %7s\n",
                     mask + 1, "family", "phase", "ns/inst", "share");
            out += line;
            any = true;
        }
        double denom = static_cast<double>(r.sampled) * tpns;
        for (size_t p = 0; p < numStepPhases; ++p) {
            if (r.phases[p].samples == 0)
                continue;
            double ns = static_cast<double>(r.phases[p].ticks) / denom;
            double share = r.totalTicks
                ? 100.0 * static_cast<double>(r.phases[p].ticks)
                    / static_cast<double>(r.totalTicks)
                : 0.0;
            snprintf(line, sizeof(line),
                     "  %-9s %-9s %9.2f %6.1f%%\n",
                     stepFamilyName(static_cast<unsigned>(f)),
                     stepPhaseName(static_cast<StepPhase>(p)), ns,
                     share);
            out += line;
        }
        snprintf(line, sizeof(line),
                 "  %-9s %-9s %9.2f  (%llu steps, %llu sampled)\n",
                 stepFamilyName(static_cast<unsigned>(f)), "total",
                 static_cast<double>(r.totalTicks) / denom,
                 static_cast<unsigned long long>(r.steps),
                 static_cast<unsigned long long>(r.sampled));
        out += line;
    }
    return out;
}

std::string
stepProfileJson()
{
    FamilyRows rows[numStepFamilies];
    snapshotRows(rows);
    double tpns = ticksPerNs();
    uint32_t mask =
        detail::gStepSampleMask.load(std::memory_order_relaxed);

    char buf[96];
    std::string out = "{";
    snprintf(buf, sizeof(buf), "\"sample_interval\": %u", mask + 1);
    out += buf;
    for (size_t f = 0; f < numStepFamilies; ++f) {
        const FamilyRows &r = rows[f];
        if (r.sampled == 0)
            continue;
        double denom = static_cast<double>(r.sampled) * tpns;
        out += ", \"";
        out += stepFamilyName(static_cast<unsigned>(f));
        out += "\": {";
        snprintf(buf, sizeof(buf),
                 "\"steps\": %llu, \"sampled\": %llu",
                 static_cast<unsigned long long>(r.steps),
                 static_cast<unsigned long long>(r.sampled));
        out += buf;
        for (size_t p = 0; p < numStepPhases; ++p) {
            if (r.phases[p].samples == 0)
                continue;
            snprintf(buf, sizeof(buf), ", \"%s_ns\": %.3f",
                     stepPhaseName(static_cast<StepPhase>(p)),
                     static_cast<double>(r.phases[p].ticks) / denom);
            out += buf;
        }
        snprintf(buf, sizeof(buf), ", \"total_ns\": %.3f}",
                 static_cast<double>(r.totalTicks) / denom);
        out += buf;
    }
    out += "}";
    return out;
}

} // namespace raceval::obs
