#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/json_writer.hh"
#include "common/log.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace raceval::obs
{

namespace detail
{
std::atomic<bool> tracingOn{false};
} // namespace detail

namespace
{

/** One completed span; 40 bytes, stored by value in the rings. */
struct TraceEvent
{
    const char *name;
    uint64_t startNs;
    uint64_t durNs;
    uint64_t arg;
    bool hasArg;
};

/**
 * Per-thread ring. The mutex is uncontended on the record path (only
 * the flusher ever takes it from another thread), so the cost is one
 * uncontested lock/unlock pair per completed span.
 */
struct ThreadBuffer
{
    std::mutex mutex;
    uint32_t tid = 0;
    uint64_t head = 0; //!< events ever recorded; slot = head % size
    std::vector<TraceEvent> ring;
};

struct TraceState
{
    std::mutex mutex; //!< buffers list + session lifecycle
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    bool active = false;
    std::string path;
    size_t ringCapacity = size_t{1} << 15;
};

TraceState &
state()
{
    // Immortal for the same reason as MetricRegistry::instance():
    // spans can record from static destructors during exit teardown.
    static TraceState *s = new TraceState();
    return *s;
}

thread_local ThreadBuffer *tlsBuffer = nullptr;

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

ThreadBuffer &
threadBuffer()
{
    if (!tlsBuffer) {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        auto buffer = std::make_unique<ThreadBuffer>();
        buffer->tid = static_cast<uint32_t>(s.buffers.size() + 1);
        buffer->ring.resize(s.ringCapacity);
        tlsBuffer = buffer.get();
        // Buffers are never freed: a detached thread's tls pointer
        // stays valid across sessions, and stopTracing() can flush
        // rings of threads that already exited.
        s.buffers.push_back(std::move(buffer));
    }
    return *tlsBuffer;
}

/** Collect every ring's events (oldest to newest per thread). */
void
collectEvents(std::vector<std::pair<uint32_t, TraceEvent>> &out,
              uint64_t &dropped)
{
    TraceState &s = state();
    std::vector<ThreadBuffer *> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        for (auto &buffer : s.buffers)
            buffers.push_back(buffer.get());
    }
    dropped = 0;
    for (ThreadBuffer *buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        size_t cap = buffer->ring.size();
        uint64_t n = std::min<uint64_t>(buffer->head, cap);
        if (buffer->head > cap)
            dropped += buffer->head - cap;
        for (uint64_t i = buffer->head - n; i < buffer->head; ++i)
            out.emplace_back(buffer->tid, buffer->ring[i % cap]);
    }
}

std::string
renderChromeTrace(std::vector<std::pair<uint32_t, TraceEvent>> events,
                  uint64_t dropped)
{
    // Perfetto prefers time-sorted events; stable keeps same-timestamp
    // nesting (outer span recorded after inner but started earlier).
    std::stable_sort(events.begin(), events.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.startNs < b.second.startNs;
                     });
#ifdef __unix__
    uint64_t pid = static_cast<uint64_t>(::getpid());
#else
    uint64_t pid = 1;
#endif
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.beginObject("otherData")
        .field("tool", "raceval")
        .field("dropped_events", dropped)
        .endObject();
    w.beginArray("traceEvents");
    for (const auto &[tid, ev] : events) {
        // ts/dur in microseconds; three decimals keep full ns
        // resolution in decimal, so the file round-trips exactly.
        w.beginObject()
            .field("name", ev.name)
            .field("cat", "raceval")
            .field("ph", "X")
            .rawField("ts", strprintf("%llu.%03llu",
                          static_cast<unsigned long long>(
                              ev.startNs / 1000),
                          static_cast<unsigned long long>(
                              ev.startNs % 1000)))
            .rawField("dur", strprintf("%llu.%03llu",
                          static_cast<unsigned long long>(
                              ev.durNs / 1000),
                          static_cast<unsigned long long>(
                              ev.durNs % 1000)))
            .field("pid", pid)
            .field("tid", uint64_t{tid});
        if (ev.hasArg)
            w.beginObject("args").field("v", ev.arg).endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

namespace detail
{

uint64_t
traceNowNs() noexcept
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

void
recordSpan(const char *name, uint64_t start_ns, uint64_t dur_ns,
           uint64_t arg, bool has_arg) noexcept
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.ring[buffer.head % buffer.ring.size()] =
        TraceEvent{name, start_ns, dur_ns, arg, has_arg};
    ++buffer.head;
}

} // namespace detail

bool
tracingActive() noexcept
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.active;
}

bool
startTracing(const std::string &path)
{
    processEpoch(); // pin the time base before any span
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.active)
        return false;
    if (const char *env = std::getenv("RACEVAL_TRACE_RING")) {
        size_t cap = std::strtoull(env, nullptr, 10);
        if (cap >= 16)
            s.ringCapacity = cap;
    }
    for (auto &buffer : s.buffers) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        buffer->head = 0;
    }
    s.path = path;
    s.active = true;
    detail::tracingOn.store(true, std::memory_order_relaxed);
    return true;
}

void
setTracingPaused(bool paused) noexcept
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    detail::tracingOn.store(s.active && !paused,
                            std::memory_order_relaxed);
}

std::string
traceEventsJson()
{
    std::vector<std::pair<uint32_t, TraceEvent>> events;
    uint64_t dropped = 0;
    collectEvents(events, dropped);
    return renderChromeTrace(std::move(events), dropped);
}

size_t
tracingEventCount()
{
    std::vector<std::pair<uint32_t, TraceEvent>> events;
    uint64_t dropped = 0;
    collectEvents(events, dropped);
    return events.size();
}

uint64_t
tracingDropped()
{
    std::vector<std::pair<uint32_t, TraceEvent>> events;
    uint64_t dropped = 0;
    collectEvents(events, dropped);
    return dropped;
}

void
setTraceRingCapacity(size_t events)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (events >= 16)
        s.ringCapacity = events;
}

size_t
stopTracing()
{
    std::string path;
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.active)
            return 0;
        // Disable recording first: spans constructed after this line
        // are no-ops; spans already in flight record into rings we are
        // about to drain, which at worst omits them from the file.
        detail::tracingOn.store(false, std::memory_order_relaxed);
        s.active = false;
        path = std::move(s.path);
        s.path.clear();
    }

    std::vector<std::pair<uint32_t, TraceEvent>> events;
    uint64_t dropped = 0;
    collectEvents(events, dropped);
    size_t count = events.size();
    std::string json = renderChromeTrace(std::move(events), dropped);

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        warn("cannot write trace file '%s'", path.c_str());
        return 0;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (dropped) {
        warn("trace '%s': ring overflow dropped %llu oldest events "
             "(raise RACEVAL_TRACE_RING)", path.c_str(),
             static_cast<unsigned long long>(dropped));
    }
    return count;
}

} // namespace raceval::obs
