/**
 * @file
 * Process-wide metrics registry: lock-free counters, gauges and
 * fixed-bucket latency histograms registered by name.
 *
 * The tuning hot path runs hundreds of thousands of evaluations per
 * race; anything instrumenting it must cost a relaxed atomic op per
 * event, never a lock. The split that achieves that:
 *
 *   - the registry (name -> metric) is mutex-guarded, but consulted
 *     only at *registration* -- call sites cache a reference once
 *     (the RV_COUNTER_ADD family of macros hides a function-local
 *     static) and then touch only the atomic;
 *   - Counter/Gauge are single relaxed atomics; Histogram is 64
 *     power-of-two buckets of relaxed atomics, so record() is a
 *     bit_width() plus two fetch_adds;
 *   - snapshot()/json() walk everything under the registry mutex --
 *     the heartbeat reporter's path, never the hot path's.
 *
 * Aggregates that already keep their own counters (EngineStats,
 * CampaignStats, ...) register a *source*: a closure returning named
 * samples, pulled only at snapshot time. That makes the registry the
 * one export path for every statistic in the process without forcing
 * existing stats structs to change their storage.
 *
 * Building with -DRACEVAL_DISABLE_OBS compiles the RV_* macros (and
 * RV_SPAN / RV_INSTANT in obs/trace.hh) down to nothing for
 * overhead-free builds; the classes stay available either way.
 */

#ifndef RACEVAL_OBS_METRICS_HH
#define RACEVAL_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace raceval::obs
{

/** One named value pulled from a registered source. */
struct Sample
{
    std::string name;
    double value = 0.0;
};

/** Monotonic event counter (relaxed atomic; wait-free). */
class Counter
{
  public:
    void
    add(uint64_t n = 1) noexcept
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        return v.load(std::memory_order_relaxed);
    }

    void reset() noexcept { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v{0};
};

/** Instantaneous level (queue depth, resident bytes, ...). */
class Gauge
{
  public:
    void
    set(int64_t x) noexcept
    {
        v.store(x, std::memory_order_relaxed);
    }

    void
    add(int64_t d) noexcept
    {
        v.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t
    value() const noexcept
    {
        return v.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> v{0};
};

/** Percentile summary of a Histogram at snapshot time. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double mean = 0.0;
    uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * Fixed-bucket latency histogram.
 *
 * Values (nanoseconds by convention) land in power-of-two buckets:
 * bucket b holds [2^(b-1), 2^b), bucket 0 holds zero. record() is
 * wait-free; percentile() reads a relaxed snapshot of the buckets and
 * interpolates linearly inside the winning bucket, so any estimate is
 * within one power of two of the exact sample percentile (tested
 * against stats::percentile in tests/test_obs.cc).
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 64;

    void
    record(uint64_t value) noexcept
    {
        buckets[bucketOf(value)].fetch_add(1,
                                           std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(value, std::memory_order_relaxed);
        // Losing this race under contention only shrinks the reported
        // max toward another in-flight sample; a CAS loop is not worth
        // it on the hot path.
        uint64_t seen = maxSeen.load(std::memory_order_relaxed);
        while (value > seen
               && !maxSeen.compare_exchange_weak(
                      seen, value, std::memory_order_relaxed)) {
        }
    }

    /** @return bucket index of a value (0..kBuckets-1). */
    static size_t
    bucketOf(uint64_t value) noexcept
    {
        size_t b = static_cast<size_t>(std::bit_width(value));
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** @return inclusive lower bound of a bucket. */
    static uint64_t
    bucketLo(size_t b) noexcept
    {
        return b == 0 ? 0 : uint64_t{1} << (b - 1);
    }

    /** @return inclusive upper bound of a bucket. */
    static uint64_t
    bucketHi(size_t b) noexcept
    {
        return b == 0 ? 0 : (uint64_t{1} << b) - 1;
    }

    uint64_t
    count() const noexcept
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Percentile estimate; @p p in [0, 100]. */
    double percentile(double p) const;

    HistogramSnapshot snapshot() const;

    void reset() noexcept;

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> maxSeen{0};
};

/**
 * The process-wide registry.
 *
 * Metrics are created on first use and live for the process (stable
 * addresses: callers hold references across the registry mutex).
 * snapshot() and json() serve the heartbeat reporter and the bench
 * drivers' metrics blobs.
 */
class MetricRegistry
{
  public:
    using SourceFn = std::function<std::vector<Sample>()>;

    /** Everything the registry knows, at one instant. */
    struct Snapshot
    {
        std::vector<std::pair<std::string, uint64_t>> counters;
        std::vector<std::pair<std::string, int64_t>> gauges;
        std::vector<std::pair<std::string, HistogramSnapshot>>
            histograms;
        /** (source prefix, samples) per registered source. */
        std::vector<std::pair<std::string, std::vector<Sample>>>
            sources;
    };

    /**
     * RAII registration of a sample source; unregisters on
     * destruction. Movable, not copyable.
     */
    class SourceHandle
    {
      public:
        SourceHandle() = default;
        SourceHandle(SourceHandle &&other) noexcept { swap(other); }
        SourceHandle &
        operator=(SourceHandle &&other) noexcept
        {
            if (this != &other) {
                release();
                swap(other);
            }
            return *this;
        }
        SourceHandle(const SourceHandle &) = delete;
        SourceHandle &operator=(const SourceHandle &) = delete;
        ~SourceHandle() { release(); }

        /** Unregister now (idempotent). */
        void release();

      private:
        friend class MetricRegistry;
        SourceHandle(MetricRegistry *registry, uint64_t id)
            : registry(registry), id(id)
        {
        }
        void
        swap(SourceHandle &other) noexcept
        {
            std::swap(registry, other.registry);
            std::swap(id, other.id);
        }

        MetricRegistry *registry = nullptr;
        uint64_t id = 0;
    };

    static MetricRegistry &instance();

    /// @name Registration (find-or-create by name; mutex-guarded --
    /// cache the returned reference, do not call per event)
    /// @{
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);
    /// @}

    /**
     * Register a pull source.
     *
     * @param prefix namespace prepended to every sample name in
     *        snapshots ("engine" -> "engine.requests").
     * @param fn called at snapshot time (thread-safe; may take its
     *        own locks but must not call back into the registry).
     */
    SourceHandle addSource(std::string prefix, SourceFn fn);

    Snapshot snapshot() const;

    /** Compact JSON object of a snapshot (the metrics blob written
     *  alongside the --json bench results). */
    std::string json() const;

    /** Reset every counter/gauge/histogram to zero and drop all
     *  sources. Metrics stay registered (addresses remain valid);
     *  test isolation only. */
    void resetForTest();

  private:
    MetricRegistry() = default;

    mutable std::mutex mutex;
    // node-based maps: values never move, so references handed out
    // stay valid while the registry grows.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    uint64_t nextSourceId = 1;
    std::map<uint64_t, std::pair<std::string, SourceFn>> sources;
};

/// @name Hot-path macros
/// Each expansion caches its metric reference in a function-local
/// static, so steady-state cost is one relaxed atomic op. Compile out
/// entirely under -DRACEVAL_DISABLE_OBS.
/// @{
#ifndef RACEVAL_DISABLE_OBS
#define RV_COUNTER_ADD(name, n)                                         \
    do {                                                                \
        static ::raceval::obs::Counter &rvObsCounter =                  \
            ::raceval::obs::MetricRegistry::instance().counter(name);   \
        rvObsCounter.add(n);                                            \
    } while (0)
#define RV_GAUGE_ADD(name, d)                                           \
    do {                                                                \
        static ::raceval::obs::Gauge &rvObsGauge =                      \
            ::raceval::obs::MetricRegistry::instance().gauge(name);     \
        rvObsGauge.add(d);                                              \
    } while (0)
#define RV_GAUGE_SET(name, x)                                           \
    do {                                                                \
        static ::raceval::obs::Gauge &rvObsGauge =                      \
            ::raceval::obs::MetricRegistry::instance().gauge(name);     \
        rvObsGauge.set(x);                                              \
    } while (0)
#define RV_HISTOGRAM_RECORD(name, v)                                    \
    do {                                                                \
        static ::raceval::obs::Histogram &rvObsHisto =                  \
            ::raceval::obs::MetricRegistry::instance().histogram(name); \
        rvObsHisto.record(v);                                           \
    } while (0)
#else
// sizeof keeps the operands referenced (silencing -Wunused for
// variables that only feed telemetry) without evaluating them.
#define RV_COUNTER_ADD(name, n) do { (void)sizeof(n); } while (0)
#define RV_GAUGE_ADD(name, d) do { (void)sizeof(d); } while (0)
#define RV_GAUGE_SET(name, x) do { (void)sizeof(x); } while (0)
#define RV_HISTOGRAM_RECORD(name, v) do { (void)sizeof(v); } while (0)
#endif
/// @}

} // namespace raceval::obs

#endif // RACEVAL_OBS_METRICS_HH
