/**
 * @file
 * RAII span tracing with per-thread ring buffers, flushed to Chrome
 * trace-event JSON (load the file in chrome://tracing or Perfetto).
 *
 * Design constraints, in order:
 *
 *   - determinism: a span never touches simulation state, RNG streams
 *     or evaluation ordering -- all bit-identity tests hold with
 *     tracing enabled (locked in by tests/test_obs.cc and the
 *     perf_obs_guard ctest entry);
 *   - hot-path cost: with no session active a Span is one relaxed
 *     atomic load; with a session active it is two steady_clock reads
 *     plus one ring-buffer slot write behind an uncontended per-thread
 *     mutex (only the flusher ever contends);
 *   - bounded memory: each thread records into a fixed-size ring;
 *     overflow overwrites the oldest events and is counted, never
 *     reallocates, never blocks.
 *
 * Span naming convention (see docs/architecture.md §10 for the full
 * taxonomy): "<subsystem>.<operation>", lowercase, static string
 * literals only -- the ring stores the pointer, not a copy. Current
 * spans: race.run / race.iteration / race.step, engine.batch /
 * engine.eval, replay.chunk, replay.lockstep, bank.record, cache.save
 * / cache.load / cache.map, campaign.task / campaign.checkpoint;
 * instants: bank.spill / bank.admit / bank.readmit / heartbeat.tick.
 *
 * -DRACEVAL_DISABLE_OBS compiles RV_SPAN / RV_INSTANT to nothing.
 */

#ifndef RACEVAL_OBS_TRACE_HH
#define RACEVAL_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace raceval::obs
{

namespace detail
{

extern std::atomic<bool> tracingOn;

/** Nanoseconds since the process trace epoch (monotonic). */
uint64_t traceNowNs() noexcept;

/** Append one completed span to this thread's ring. */
void recordSpan(const char *name, uint64_t start_ns, uint64_t dur_ns,
                uint64_t arg, bool has_arg) noexcept;

} // namespace detail

/** @return true when a session is open and not paused (span fast
 *  path: one relaxed load). */
inline bool
tracingEnabled() noexcept
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/** @return true when a session is open (paused or not). */
bool tracingActive() noexcept;

/**
 * Open the process-wide trace session.
 *
 * @param path Chrome trace JSON written by stopTracing().
 * @return false when a session is already open (kept untouched).
 */
bool startTracing(const std::string &path);

/**
 * Pause/resume span recording without closing the session. Used for
 * telemetry-on/off A-B measurement inside one process (the
 * tuning_throughput overhead guard).
 */
void setTracingPaused(bool paused) noexcept;

/**
 * Close the session: collect every thread's ring, write the Chrome
 * trace file, disable span recording. Idempotent.
 *
 * @return events written (0 when no session was open or the file
 *         could not be written -- a trace is diagnostics, losing one
 *         never kills a run).
 */
size_t stopTracing();

/** Render the session's events as Chrome trace JSON without closing
 *  it (tests; also the body of stopTracing()). */
std::string traceEventsJson();

/** @return events currently held in the rings (oldest may already be
 *  overwritten). */
size_t tracingEventCount();

/** @return events overwritten by ring wrap-around this session. */
uint64_t tracingDropped();

/**
 * Set the per-thread ring capacity in events (power of two rounded
 * up; default 1<<15 ~= 1 MiB/thread). Takes effect for rings created
 * after the call; call before startTracing(). The RACEVAL_TRACE_RING
 * environment variable overrides the default at session start.
 */
void setTraceRingCapacity(size_t events);

/**
 * RAII scoped span. Construct with a *static* name literal; records
 * itself into the thread's ring at destruction. The enabled check
 * happens at construction: a span alive across a pause/stop still
 * records, which at worst adds an event to a closing session.
 */
class Span
{
  public:
    explicit Span(const char *static_name) noexcept
    {
        if (tracingEnabled()) {
            name = static_name;
            start = detail::traceNowNs();
        }
    }

    /** @param arg one uint64 payload, shown as args.v in the viewer
     *  (instance ids, chunk indices, batch sizes). */
    Span(const char *static_name, uint64_t arg) noexcept
        : Span(static_name)
    {
        this->arg = arg;
        hasArg = true;
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (name) {
            detail::recordSpan(name, start,
                               detail::traceNowNs() - start, arg,
                               hasArg);
        }
    }

  private:
    const char *name = nullptr;
    uint64_t start = 0;
    uint64_t arg = 0;
    bool hasArg = false;
};

/** Record a zero-duration instant event (spill decisions,
 *  re-admissions, heartbeat ticks). */
inline void
instant(const char *static_name) noexcept
{
    if (tracingEnabled())
        detail::recordSpan(static_name, detail::traceNowNs(), 0, 0,
                           false);
}

inline void
instant(const char *static_name, uint64_t arg) noexcept
{
    if (tracingEnabled())
        detail::recordSpan(static_name, detail::traceNowNs(), 0, arg,
                           true);
}

#define RV_OBS_CONCAT2(a, b) a##b
#define RV_OBS_CONCAT(a, b) RV_OBS_CONCAT2(a, b)

#ifndef RACEVAL_DISABLE_OBS
/** Scoped span covering the rest of the enclosing block. */
#define RV_SPAN(...)                                                    \
    ::raceval::obs::Span RV_OBS_CONCAT(rvObsSpan, __LINE__){__VA_ARGS__}
/** Zero-duration instant event. */
#define RV_INSTANT(...) ::raceval::obs::instant(__VA_ARGS__)
#else
#define RV_SPAN(...) do { } while (0)
#define RV_INSTANT(...) do { } while (0)
#endif

} // namespace raceval::obs

#endif // RACEVAL_OBS_TRACE_HH
