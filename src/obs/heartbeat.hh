/**
 * @file
 * Background heartbeat reporter over the metrics registry.
 *
 * A long campaign (or, next on the roadmap, the tuning-as-a-service
 * daemon) is opaque while it runs: the stats structs only surface at
 * the end. The heartbeat thread closes that gap by periodically
 * snapshotting the MetricRegistry and
 *
 *   - logging one compact key=value line at Info level (through the
 *     pluggable log sink, so daemon logs stay machine-parseable),
 *     with per-interval rates for counters; and
 *   - rewriting a metrics JSON file (write-then-rename, so readers
 *     never see a torn file) that accompanies the bench drivers'
 *     --json blobs.
 *
 * Lifecycle: startHeartbeat() spawns the thread, stopHeartbeat()
 * takes a final snapshot, writes the file one last time and joins.
 * The reporter only ever *reads* metrics; it can never perturb
 * evaluation determinism.
 */

#ifndef RACEVAL_OBS_HEARTBEAT_HH
#define RACEVAL_OBS_HEARTBEAT_HH

#include <string>
#include <vector>

namespace raceval::obs
{

/** Heartbeat knobs. */
struct HeartbeatOptions
{
    /** Seconds between snapshots (clamped to >= 0.01). */
    double intervalSeconds = 10.0;
    /** Metrics JSON rewritten every tick and at stop ("" = none). */
    std::string metricsJsonPath;
    /** Emit the Info-level stderr line each tick. */
    bool logLine = true;
    /** Only samples/metrics whose name contains one of these
     *  substrings appear in the log line (the JSON always carries
     *  everything). Empty = a built-in shortlist of the high-signal
     *  names: experiments/s, hit rates, resident bytes, queue depth. */
    std::vector<std::string> logKeys;
};

/** Start the background reporter (no-op when already running). */
void startHeartbeat(HeartbeatOptions options);

/** @return true while the reporter thread is alive. */
bool heartbeatRunning();

/** Final snapshot + join; idempotent. */
void stopHeartbeat();

/**
 * Write one registry snapshot as a metrics JSON file immediately
 * (usable without a running heartbeat -- the bench drivers call this
 * once at exit so every --json blob gets a sibling metrics file).
 *
 * @return bytes written (0 on I/O failure, with a warning).
 */
size_t writeMetricsJson(const std::string &path);

} // namespace raceval::obs

#endif // RACEVAL_OBS_HEARTBEAT_HH
