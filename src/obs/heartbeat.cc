#include "obs/heartbeat.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "common/json_writer.hh"
#include "common/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace raceval::obs
{

namespace
{

/** Default shortlist for the stderr line (substring match). */
const char *const kDefaultLogKeys[] = {
    "experiments_per_s", "hit_rate", "resident_bytes", "queue_depth",
    "fresh_evals", "pending",
};

struct HeartbeatState
{
    std::mutex mutex;
    std::condition_variable wake;
    std::thread thread;
    bool running = false;
    bool stopRequested = false;
    HeartbeatOptions opts;
    uint64_t ticks = 0;
    /** Counter values at the previous tick, for rate computation. */
    std::map<std::string, uint64_t> lastCounters;
    std::chrono::steady_clock::time_point lastTick;
    std::chrono::steady_clock::time_point started;
};

HeartbeatState &
state()
{
    static HeartbeatState s;
    return s;
}

bool
matchesAny(const std::string &name,
           const std::vector<std::string> &keys)
{
    if (keys.empty()) {
        for (const char *key : kDefaultLogKeys) {
            if (name.find(key) != std::string::npos)
                return true;
        }
        return false;
    }
    for (const std::string &key : keys) {
        if (name.find(key) != std::string::npos)
            return true;
    }
    return false;
}

std::string
metricsJson(double uptime_seconds)
{
    JsonWriter w;
    w.beginObject();
    w.field("uptime_seconds", uptime_seconds);
    w.rawField("metrics", MetricRegistry::instance().json());
    w.endObject();
    return w.str();
}

size_t
writeJsonFile(const std::string &path, const std::string &json)
{
    // Write-then-rename: a concurrent reader (CI collecting the
    // artifact mid-run) sees either the previous snapshot or this
    // one, never a torn file.
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "w");
    if (!file) {
        warn("cannot write metrics file '%s'", tmp.c_str());
        return 0;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename metrics file onto '%s'", path.c_str());
        std::remove(tmp.c_str());
        return 0;
    }
    return json.size();
}

/** One tick: log line + metrics file. Called with the state mutex
 *  NOT held (snapshotting pulls sources that take their own locks). */
void
tick(HeartbeatState &s)
{
    RV_INSTANT("heartbeat.tick");
    auto now = std::chrono::steady_clock::now();
    double interval = std::chrono::duration<double>(
        now - s.lastTick).count();
    double uptime = std::chrono::duration<double>(
        now - s.started).count();
    s.lastTick = now;
    ++s.ticks;

    MetricRegistry::Snapshot snap =
        MetricRegistry::instance().snapshot();

    if (s.opts.logLine) {
        std::string line = strprintf("hb[%llu] up %.1fs",
            static_cast<unsigned long long>(s.ticks), uptime);
        for (const auto &[name, value] : snap.counters) {
            uint64_t last = s.lastCounters.count(name)
                ? s.lastCounters[name] : 0;
            double rate = interval > 0.0
                ? static_cast<double>(value - last) / interval : 0.0;
            s.lastCounters[name] = value;
            if (!matchesAny(name, s.opts.logKeys))
                continue;
            line += strprintf(" %s=%llu(+%.0f/s)", name.c_str(),
                              static_cast<unsigned long long>(value),
                              rate);
        }
        for (const auto &[name, value] : snap.gauges) {
            if (matchesAny(name, s.opts.logKeys)) {
                line += strprintf(" %s=%lld", name.c_str(),
                                  static_cast<long long>(value));
            }
        }
        for (const auto &[prefix, samples] : snap.sources) {
            for (const Sample &sample : samples) {
                std::string name = prefix + "." + sample.name;
                if (matchesAny(name, s.opts.logKeys)) {
                    line += strprintf(" %s=%.6g", name.c_str(),
                                      sample.value);
                }
            }
        }
        logAt(LogLevel::Info, "%s", line.c_str());
    }

    if (!s.opts.metricsJsonPath.empty())
        writeJsonFile(s.opts.metricsJsonPath, metricsJson(uptime));
}

void
reporterLoop()
{
    HeartbeatState &s = state();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(s.mutex);
            double seconds = s.opts.intervalSeconds;
            s.wake.wait_for(
                lock,
                std::chrono::duration<double>(seconds),
                [&] { return s.stopRequested; });
            if (s.stopRequested)
                return; // stopHeartbeat() takes the final snapshot
        }
        tick(s);
    }
}

} // namespace

void
startHeartbeat(HeartbeatOptions options)
{
    HeartbeatState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.running)
        return;
    if (options.intervalSeconds < 0.01)
        options.intervalSeconds = 0.01;
    s.opts = std::move(options);
    s.stopRequested = false;
    s.ticks = 0;
    s.lastCounters.clear();
    s.started = s.lastTick = std::chrono::steady_clock::now();
    s.running = true;
    s.thread = std::thread(reporterLoop);
}

bool
heartbeatRunning()
{
    HeartbeatState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.running;
}

void
stopHeartbeat()
{
    HeartbeatState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.running)
            return;
        s.stopRequested = true;
    }
    s.wake.notify_all();
    s.thread.join();
    tick(s); // final snapshot: log line + metrics file
    std::lock_guard<std::mutex> lock(s.mutex);
    s.running = false;
}

size_t
writeMetricsJson(const std::string &path)
{
    return writeJsonFile(path, metricsJson(0.0));
}

} // namespace raceval::obs
