/**
 * @file
 * Branch prediction unit: direction predictors, branch target buffer,
 * return address stack, and an optional dedicated indirect-target
 * predictor.
 *
 * The paper calls branch predictors "ideal candidates for automated
 * tuning" because their real configurations are undisclosed; the
 * predictor *kind* and every geometry knob here are exposed to the
 * racing tuner. Indirect-branch support is the feature the paper added
 * after micro-benchmark CS1 exposed its absence (§IV-B).
 */

#ifndef RACEVAL_BRANCH_PREDICTOR_HH
#define RACEVAL_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/trace.hh"

namespace raceval::branch
{

/** Direction predictor families selectable by the tuner. */
enum class PredictorKind : uint8_t
{
    NotTaken,   //!< static: conditional branches predicted not taken
    Bimodal,    //!< per-pc 2-bit counters
    GShare,     //!< global history xor pc
    Local,      //!< per-pc local history into shared counters
    Tournament, //!< bimodal + gshare with a chooser

    NumKinds
};

/** @return predictor family name ("gshare", ...). */
const char *predictorKindName(PredictorKind kind);

/** Configuration surface of the branch unit. */
struct BranchParams
{
    PredictorKind kind = PredictorKind::Bimodal;
    unsigned tableBits = 12;     //!< log2 of counter table entries
    unsigned historyBits = 8;    //!< global/local history length
    unsigned btbBits = 9;        //!< log2 of BTB entries
    unsigned rasEntries = 8;     //!< return address stack depth
    bool indirect = false;       //!< dedicated indirect target predictor
    unsigned indirectBits = 8;   //!< log2 of indirect table entries
    unsigned indirectHistory = 4;//!< path history length for indirect
};

/** Counted outcomes, consumed by cost functions and perf counters. */
struct BranchStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t directionMispredicts = 0;
    uint64_t targetMispredicts = 0;

    /** @return misprediction rate in [0, 1]. */
    double
    rate() const
    {
        return branches ? static_cast<double>(mispredicts)
            / static_cast<double>(branches) : 0.0;
    }
};

/**
 * Complete branch prediction unit.
 *
 * Timing models call predict() once per dynamic branch; the unit
 * self-updates with the actual outcome and reports whether fetch would
 * have been redirected (i.e. a mispredict that costs the pipeline its
 * flush penalty).
 */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchParams &params);

    /**
     * Predict one dynamic branch and update all structures.
     *
     * @param dyn the dynamic branch instruction (taken/nextPc filled).
     * @return true when the prediction was wrong (direction or target).
     */
    bool predict(const vm::DynInst &dyn);

    /**
     * Field-wise overload for the packed replay path (identical
     * behavior; the unit reads exactly these four facts).
     *
     * @param pc the branch pc.
     * @param cls the branch's OpClass (must be a Branch* class).
     * @param taken actual outcome.
     * @param next_pc actual successor pc.
     */
    bool predict(uint64_t pc, isa::OpClass cls, bool taken,
                 uint64_t next_pc);

    /** @return accumulated statistics. */
    const BranchStats &stats() const { return bstats; }

    /** Forget all learned state (between runs). */
    void reset();

  private:
    bool predictDirection(uint64_t pc);
    void updateDirection(uint64_t pc, bool taken);
    static void updateCounter(uint8_t &counter, bool taken);

    BranchParams params;
    BranchStats bstats;

    // Direction state.
    std::vector<uint8_t> bimodal;     //!< 2-bit counters
    std::vector<uint8_t> gshare;      //!< 2-bit counters
    std::vector<uint16_t> localHist;  //!< per-pc local histories
    std::vector<uint8_t> localCtr;    //!< local counter table
    std::vector<uint8_t> chooser;     //!< tournament selector
    uint64_t globalHistory = 0;

    // Target state.
    struct BtbEntry { uint64_t tag = 0; uint64_t target = 0;
                      bool valid = false; };
    std::vector<BtbEntry> btb;
    std::vector<uint64_t> ras;
    size_t rasTop = 0;
    std::vector<BtbEntry> indirectTable;
    uint64_t pathHistory = 0;
};

} // namespace raceval::branch

#endif // RACEVAL_BRANCH_PREDICTOR_HH
