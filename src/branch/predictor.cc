#include "branch/predictor.hh"

#include "common/log.hh"

namespace raceval::branch
{

using isa::OpClass;

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::NotTaken: return "not-taken";
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::GShare: return "gshare";
      case PredictorKind::Local: return "local";
      case PredictorKind::Tournament: return "tournament";
      default: panic("bad predictor kind %d", static_cast<int>(kind));
    }
}

BranchUnit::BranchUnit(const BranchParams &p)
    : params(p)
{
    RV_ASSERT(p.tableBits >= 2 && p.tableBits <= 20,
              "tableBits %u out of range", p.tableBits);
    RV_ASSERT(p.btbBits >= 2 && p.btbBits <= 20,
              "btbBits %u out of range", p.btbBits);
    size_t table = size_t{1} << params.tableBits;
    bimodal.assign(table, 1);  // weakly not-taken
    gshare.assign(table, 1);
    localHist.assign(table, 0);
    localCtr.assign(table, 1);
    chooser.assign(table, 1);
    btb.assign(size_t{1} << params.btbBits, BtbEntry{});
    ras.assign(params.rasEntries ? params.rasEntries : 1, 0);
    indirectTable.assign(size_t{1} << params.indirectBits, BtbEntry{});
    reset();
}

void
BranchUnit::reset()
{
    bstats = BranchStats{};
    std::fill(bimodal.begin(), bimodal.end(), 1);
    std::fill(gshare.begin(), gshare.end(), 1);
    std::fill(localHist.begin(), localHist.end(), 0);
    std::fill(localCtr.begin(), localCtr.end(), 1);
    std::fill(chooser.begin(), chooser.end(), 1);
    std::fill(btb.begin(), btb.end(), BtbEntry{});
    std::fill(indirectTable.begin(), indirectTable.end(), BtbEntry{});
    std::fill(ras.begin(), ras.end(), 0);
    globalHistory = 0;
    pathHistory = 0;
    rasTop = 0;
}

void
BranchUnit::updateCounter(uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

bool
BranchUnit::predictDirection(uint64_t pc)
{
    size_t mask = bimodal.size() - 1;
    size_t pc_index = (pc >> 2) & mask;
    uint64_t hist_mask = (1ull << params.historyBits) - 1;
    size_t gs_index = ((pc >> 2) ^ (globalHistory & hist_mask)) & mask;

    switch (params.kind) {
      case PredictorKind::NotTaken:
        return false;
      case PredictorKind::Bimodal:
        return bimodal[pc_index] >= 2;
      case PredictorKind::GShare:
        return gshare[gs_index] >= 2;
      case PredictorKind::Local: {
        size_t ctr_index = (localHist[pc_index]
                            ^ static_cast<uint16_t>(pc >> 2)) & mask;
        return localCtr[ctr_index] >= 2;
      }
      case PredictorKind::Tournament: {
        bool use_gshare = chooser[pc_index] >= 2;
        return use_gshare ? gshare[gs_index] >= 2
                          : bimodal[pc_index] >= 2;
      }
      default:
        panic("bad predictor kind %d", static_cast<int>(params.kind));
    }
}

void
BranchUnit::updateDirection(uint64_t pc, bool taken)
{
    size_t mask = bimodal.size() - 1;
    size_t pc_index = (pc >> 2) & mask;
    uint64_t hist_mask = (1ull << params.historyBits) - 1;
    size_t gs_index = ((pc >> 2) ^ (globalHistory & hist_mask)) & mask;

    switch (params.kind) {
      case PredictorKind::NotTaken:
        break;
      case PredictorKind::Bimodal:
        updateCounter(bimodal[pc_index], taken);
        break;
      case PredictorKind::GShare:
        updateCounter(gshare[gs_index], taken);
        break;
      case PredictorKind::Local: {
        size_t ctr_index = (localHist[pc_index]
                            ^ static_cast<uint16_t>(pc >> 2)) & mask;
        updateCounter(localCtr[ctr_index], taken);
        uint16_t hist_bits_mask =
            static_cast<uint16_t>((1u << params.historyBits) - 1);
        localHist[pc_index] = static_cast<uint16_t>(
            ((localHist[pc_index] << 1) | (taken ? 1 : 0))
            & hist_bits_mask);
        break;
      }
      case PredictorKind::Tournament: {
        bool bimodal_correct = (bimodal[pc_index] >= 2) == taken;
        bool gshare_correct = (gshare[gs_index] >= 2) == taken;
        if (bimodal_correct != gshare_correct)
            updateCounter(chooser[pc_index], gshare_correct);
        updateCounter(bimodal[pc_index], taken);
        updateCounter(gshare[gs_index], taken);
        break;
      }
      default:
        panic("bad predictor kind %d", static_cast<int>(params.kind));
    }
    globalHistory = (globalHistory << 1) | (taken ? 1 : 0);
}

bool
BranchUnit::predict(const vm::DynInst &dyn)
{
    RV_ASSERT(dyn.inst.isBranch, "predict() on non-branch %s",
              isa::opcodeName(dyn.inst.op));
    return predict(dyn.pc, dyn.inst.cls, dyn.taken, dyn.nextPc);
}

bool
BranchUnit::predict(uint64_t pc, OpClass cls, bool actual_taken,
                    uint64_t actual_next_pc)
{
    ++bstats.branches;
    uint64_t fallthrough = pc + 4;
    size_t btb_mask = btb.size() - 1;
    BtbEntry &btb_entry = btb[(pc >> 2) & btb_mask];
    bool btb_hit = btb_entry.valid && btb_entry.tag == pc;

    bool pred_taken;
    uint64_t pred_target = fallthrough;

    switch (cls) {
      case OpClass::BranchCond:
        pred_taken = predictDirection(pc);
        if (pred_taken)
            pred_target = btb_hit ? btb_entry.target : fallthrough;
        break;
      case OpClass::BranchUncond:
      case OpClass::BranchCall:
        pred_taken = true;
        pred_target = btb_hit ? btb_entry.target : fallthrough;
        break;
      case OpClass::BranchRet:
        pred_taken = true;
        if (params.rasEntries) {
            pred_target = ras[(rasTop + ras.size() - 1) % ras.size()];
        } else {
            pred_target = btb_hit ? btb_entry.target : fallthrough;
        }
        break;
      case OpClass::BranchIndirect: {
        pred_taken = true;
        if (params.indirect) {
            size_t ind_mask = indirectTable.size() - 1;
            uint64_t hist_mask = (1ull << params.indirectHistory) - 1;
            size_t index = ((pc >> 2) ^ (pathHistory & hist_mask))
                & ind_mask;
            const BtbEntry &entry = indirectTable[index];
            pred_target = entry.valid ? entry.target
                : (btb_hit ? btb_entry.target : fallthrough);
        } else {
            pred_target = btb_hit ? btb_entry.target : fallthrough;
        }
        break;
      }
      default:
        panic("predict: bad branch class %d", static_cast<int>(cls));
    }

    bool direction_wrong = pred_taken != actual_taken;
    bool target_wrong = actual_taken && !direction_wrong
        && pred_target != actual_next_pc;
    bool mispredict = direction_wrong || target_wrong;
    if (mispredict) {
        ++bstats.mispredicts;
        if (direction_wrong)
            ++bstats.directionMispredicts;
        else
            ++bstats.targetMispredicts;
    }

    // --- updates ---------------------------------------------------------
    if (cls == OpClass::BranchCond)
        updateDirection(pc, actual_taken);

    if (actual_taken) {
        btb_entry.valid = true;
        btb_entry.tag = pc;
        btb_entry.target = actual_next_pc;
    }

    if (cls == OpClass::BranchCall && params.rasEntries) {
        ras[rasTop] = fallthrough;
        rasTop = (rasTop + 1) % ras.size();
    } else if (cls == OpClass::BranchRet && params.rasEntries) {
        rasTop = (rasTop + ras.size() - 1) % ras.size();
    }

    if (cls == OpClass::BranchIndirect) {
        if (params.indirect) {
            size_t ind_mask = indirectTable.size() - 1;
            uint64_t hist_mask = (1ull << params.indirectHistory) - 1;
            size_t index = ((pc >> 2) ^ (pathHistory & hist_mask))
                & ind_mask;
            indirectTable[index] = BtbEntry{pc, actual_next_pc, true};
        }
        // Path history mixes in the low target bits, following
        // history-based indirect predictors.
        pathHistory = (pathHistory << 3) ^ (actual_next_pc >> 2);
    }
    return mispredict;
}

} // namespace raceval::branch
