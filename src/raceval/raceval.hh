/**
 * @file
 * Umbrella header: the full public API of the raceval library.
 */

#ifndef RACEVAL_RACEVAL_HH
#define RACEVAL_RACEVAL_HH

#include "branch/predictor.hh"
#include "cache/cache.hh"
#include "cache/dram.hh"
#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "cache/prefetch.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/str.hh"
#include "common/thread_pool.hh"
#include "core/contention.hh"
#include "core/frontend.hh"
#include "core/inorder.hh"
#include "core/interval.hh"
#include "core/ooo.hh"
#include "core/params.hh"
#include "core/stats.hh"
#include "core/timing_model.hh"
#include "engine/engine.hh"
#include "engine/eval_cache.hh"
#include "engine/fingerprint.hh"
#include "engine/trace_bank.hh"
#include "hw/machine.hh"
#include "isa/assembler.hh"
#include "isa/decoder.hh"
#include "isa/opcodes.hh"
#include "isa/program.hh"
#include "sift/sift.hh"
#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "stats/tests.hh"
#include "tuner/evaluator.hh"
#include "tuner/race.hh"
#include "tuner/space.hh"
#include "ubench/ubench.hh"
#include "validate/flow.hh"
#include "validate/latency_probe.hh"
#include "validate/oracle.hh"
#include "validate/perturb.hh"
#include "validate/sniper_space.hh"
#include "vm/functional.hh"
#include "vm/mem.hh"
#include "vm/trace.hh"
#include "workload/workload.hh"

#endif // RACEVAL_RACEVAL_HH
