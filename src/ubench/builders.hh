/**
 * @file
 * Internal: per-benchmark program builders and shared assembly idioms.
 * Not part of the public API; include ubench/ubench.hh instead.
 */

#ifndef RACEVAL_UBENCH_BUILDERS_HH
#define RACEVAL_UBENCH_BUILDERS_HH

#include <cstdint>

#include "isa/assembler.hh"

namespace raceval::ubench::detail
{

/// Register conventions shared by all builders.
constexpr uint8_t rCnt = 19;   //!< loop counter
constexpr uint8_t rBaseA = 20; //!< array A base
constexpr uint8_t rBaseB = 24; //!< array B base
constexpr uint8_t rBaseC = 25; //!< array C base
constexpr uint8_t rLcg = 21;   //!< LCG state
constexpr uint8_t rLcgA = 22;  //!< LCG multiplier constant
constexpr uint8_t rOff = 23;   //!< running offset

/** Emit the loop prologue (sets the counter, places the label). */
void beginLoop(isa::Assembler &a, uint64_t iters);

/** Emit the loop epilogue (decrement, branch, halt). */
void endLoop(isa::Assembler &a);

/** Load the LCG multiplier into rLcgA and seed rLcg. */
void lcgSetup(isa::Assembler &a, uint64_t seed = 0x2545f491);

/** Advance the LCG (2 instructions); fresh bits land in rLcg. */
void lcgStep(isa::Assembler &a);

/**
 * Pre-touch a region with one store per page so the hardware model
 * treats it as initialized memory (the paper's uninitialized-array
 * fix). Uses x26/x27; emits ~4 insts per page.
 *
 * @param label_suffix keeps labels unique when called twice.
 */
void initRegion(isa::Assembler &a, uint64_t base, uint64_t bytes,
                const char *label_suffix = "");

/** @return iterations for a loop body to hit a target dynamic count. */
uint64_t itersFor(uint64_t target_insts, uint64_t body_insts,
                  uint64_t preamble = 0);

// --- memory hierarchy (mem.cc) ------------------------------------------
isa::Program buildMC(uint64_t target, bool init);
isa::Program buildMCS(uint64_t target, bool init);
isa::Program buildMD(uint64_t target, bool init);
isa::Program buildMI(uint64_t target, bool init);
isa::Program buildMIM(uint64_t target, bool init);
isa::Program buildMIM2(uint64_t target, bool init);
isa::Program buildMIP(uint64_t target, bool init);
isa::Program buildML2(uint64_t target, bool init);
isa::Program buildML2BWld(uint64_t target, bool init);
isa::Program buildML2BWldst(uint64_t target, bool init);
isa::Program buildML2BWst(uint64_t target, bool init);
isa::Program buildML2st(uint64_t target, bool init);
isa::Program buildMM(uint64_t target, bool init);
isa::Program buildMMst(uint64_t target, bool init);
isa::Program buildMDyn(uint64_t target, bool init);

// --- control flow (control.cc) --------------------------------------------
isa::Program buildCCa(uint64_t target, bool init);
isa::Program buildCCe(uint64_t target, bool init);
isa::Program buildCCh(uint64_t target, bool init);
isa::Program buildCChSt(uint64_t target, bool init);
isa::Program buildCCl(uint64_t target, bool init);
isa::Program buildCCm(uint64_t target, bool init);
isa::Program buildCF1(uint64_t target, bool init);
isa::Program buildCRd(uint64_t target, bool init);
isa::Program buildCRf(uint64_t target, bool init);
isa::Program buildCRm(uint64_t target, bool init);
isa::Program buildCS1(uint64_t target, bool init);
isa::Program buildCS3(uint64_t target, bool init);

// --- data parallel + execution + store (dpexec.cc) -----------------------
isa::Program buildDP1d(uint64_t target, bool init);
isa::Program buildDP1f(uint64_t target, bool init);
isa::Program buildDPcvt(uint64_t target, bool init);
isa::Program buildDPT(uint64_t target, bool init);
isa::Program buildDPTd(uint64_t target, bool init);
isa::Program buildED1(uint64_t target, bool init);
isa::Program buildEF(uint64_t target, bool init);
isa::Program buildEI(uint64_t target, bool init);
isa::Program buildEM1(uint64_t target, bool init);
isa::Program buildEM5(uint64_t target, bool init);
isa::Program buildSTL2(uint64_t target, bool init);
isa::Program buildSTL2b(uint64_t target, bool init);
isa::Program buildSTc(uint64_t target, bool init);

} // namespace raceval::ubench::detail

#endif // RACEVAL_UBENCH_BUILDERS_HH
