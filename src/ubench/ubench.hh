/**
 * @file
 * The targeted micro-benchmark suite (paper Table I).
 *
 * All 40 micro-benchmarks of the suite the paper tunes with
 * (VerticalResearchGroup microbench [30]) are re-implemented as
 * AArch64-lite programs in the same five categories. Each stresses one
 * processor component so that high CPI error isolates the mis-modeled
 * component (paper §III-B). Dynamic instruction counts follow Table I,
 * scaled per the policy in DESIGN.md section 7.
 */

#ifndef RACEVAL_UBENCH_UBENCH_HH
#define RACEVAL_UBENCH_UBENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace raceval::ubench
{

/** Micro-benchmark categories (paper Table I groups). */
enum class Category : uint8_t
{
    Memory,       //!< memory hierarchy
    Control,      //!< control flow
    DataParallel, //!< data-parallel / FP
    Execution,    //!< execution / dependency chains
    Store,        //!< store intensive
};

/** @return category display name. */
const char *categoryName(Category cat);

/** One suite entry. */
struct UbenchInfo
{
    const char *name;          //!< paper name, e.g. "ML2_BW_ld"
    Category category;
    uint64_t paperDynInsts;    //!< Table I dynamic AArch64 count
    /**
     * Program builder.
     *
     * @param target_insts approximate dynamic instruction target.
     * @param init_arrays pre-touch data arrays (the paper's fix for
     *        the uninitialized-array anecdote); false reproduces the
     *        original buggy behaviour.
     */
    isa::Program (*builder)(uint64_t target_insts, bool init_arrays);
};

/**
 * Scale a Table I count into tuning-friendly range: halve until
 * <= cap (relative ordering is preserved as far as possible). The
 * default cap matches the Table I tuning suite; long-loop firmware
 * workloads pass a larger cap so traces stay >= 1 M instructions and
 * exercise the TraceBank spill + re-admission path instead of being
 * silently halved below it.
 */
uint64_t scaledCount(uint64_t paper_count, uint64_t cap = 260'000);

/** @return the full 40-entry suite in Table I order. */
const std::vector<UbenchInfo> &all();

/** @return suite entry by name, or nullptr. */
const UbenchInfo *find(const std::string &name);

/** Build a suite program at its scaled instruction count. */
isa::Program build(const UbenchInfo &info, bool init_arrays = true);

} // namespace raceval::ubench

#endif // RACEVAL_UBENCH_UBENCH_HH
