/**
 * @file
 * Memory-hierarchy micro-benchmarks (Table I, first group): working
 * sets targeted at each cache level, conflict-miss streams, dependent
 * and independent miss patterns, bandwidth streams and pointer chases.
 */

#include "ubench/builders.hh"

#include "ubench/ubench.hh"

namespace raceval::ubench::detail
{

namespace
{

/** Array bases, well clear of the code segment. */
constexpr uint64_t baseA = 0x00100000; // 1 MiB
constexpr uint64_t baseB = 0x02000000; // 32 MiB
constexpr uint64_t baseBig = 0x08000000; // 128 MiB

constexpr uint64_t l1WaySpan = 8192;   // 128 sets x 64 B (A53/A72 L1D)
constexpr uint64_t l2Resident = 256 * 1024;
constexpr uint64_t dramSpan = 8 * 1024 * 1024;

} // namespace

// Conflict loads: walk addresses 8 * 8 KiB apart, all landing in one
// L1 set under mask indexing (8 ways wanted, 4 present).
isa::Program
buildMC(uint64_t target, bool init)
{
    isa::Assembler a("MC");
    uint64_t preamble = init ? (8 * l1WaySpan / 4096) * 4 + 6 : 6;
    if (init)
        initRegion(a, baseA, 8 * l1WaySpan);
    a.loadImm(rBaseA, baseA);
    a.movz(rOff, 0);
    // Body: 8 conflicting loads (offsets k * 8 KiB), then wrap.
    beginLoop(a, itersFor(target, 17, preamble));
    for (int k = 0; k < 8; ++k) {
        a.ldx(static_cast<uint8_t>(k), rBaseA, rOff);
        a.addi(rOff, rOff, static_cast<int16_t>(l1WaySpan));
    }
    a.movz(rOff, 0); // wrap to the first way
    endLoop(a);
    return a.finish();
}

// Conflict stores: same set-colliding walk, with stores.
isa::Program
buildMCS(uint64_t target, bool init)
{
    isa::Assembler a("MCS");
    uint64_t preamble = init ? (8 * l1WaySpan / 4096) * 4 + 6 : 6;
    if (init)
        initRegion(a, baseA, 8 * l1WaySpan);
    a.loadImm(rBaseA, baseA);
    a.movz(rOff, 0);
    beginLoop(a, itersFor(target, 17, preamble));
    for (int k = 0; k < 8; ++k) {
        a.stx(static_cast<uint8_t>(k % 4), rBaseA, rOff);
        a.addi(rOff, rOff, static_cast<int16_t>(l1WaySpan));
    }
    a.movz(rOff, 0);
    endLoop(a);
    return a.finish();
}

// Load-store dependence: store then immediately reload the same
// location, serially (forwarding / replay behaviour).
isa::Program
buildMD(uint64_t target, bool init)
{
    isa::Assembler a("MD");
    (void)init; // single hot line: always written first
    a.loadImm(rBaseA, baseA);
    a.movz(0, 1);
    beginLoop(a, itersFor(target, 4, 6));
    a.str(0, rBaseA, 0, 8);
    a.ldr(1, rBaseA, 0, 8);
    a.addi(0, 1, 1); // value chains through the loads
    a.nop();
    endLoop(a);
    return a.finish();
}

// Independent L1-resident loads: peak load-port throughput.
isa::Program
buildMI(uint64_t target, bool init)
{
    isa::Assembler a("MI");
    (void)init;
    a.loadImm(rBaseA, baseA);
    // Warm the single line once by storing to it.
    a.str(isa::regZero, rBaseA, 0, 8);
    beginLoop(a, itersFor(target, 8, 7));
    for (int k = 0; k < 8; ++k)
        a.ldr(static_cast<uint8_t>(k), rBaseA,
              static_cast<int16_t>(8 * k), 8);
    endLoop(a);
    return a.finish();
}

// Independent random loads missing to DRAM: MLP limited by MSHRs.
isa::Program
buildMIM(uint64_t target, bool init)
{
    isa::Assembler a("MIM");
    uint64_t preamble = init ? (dramSpan / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseBig, dramSpan);
    a.loadImm(rBaseA, baseBig);
    lcgSetup(a);
    a.loadImm(28, dramSpan - 64); // address mask base
    beginLoop(a, itersFor(target, 14, preamble));
    lcgStep(a);
    a.lsri(0, rLcg, 17);
    a.and_(0, 0, 28);
    a.ldx(1, rBaseA, 0);
    a.lsri(2, rLcg, 40);
    a.and_(2, 2, 28);
    a.ldx(3, rBaseA, 2);
    // Consume each loaded value through a short dependent chain:
    // keeps a window's worth of work in flight, so out-of-order
    // window sizing is observable (not just MSHR count).
    a.eor(9, 9, 1);
    a.lsri(10, 9, 3);
    a.add(11, 11, 10);
    a.eor(12, 12, 3);
    a.lsri(13, 12, 5);
    a.add(14, 14, 13);
    endLoop(a);
    return a.finish();
}

// Independent random loads within an L2-sized set: L2-hit MLP.
isa::Program
buildMIM2(uint64_t target, bool init)
{
    isa::Assembler a("MIM2");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    lcgSetup(a);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 14, preamble));
    lcgStep(a);
    a.lsri(0, rLcg, 17);
    a.and_(0, 0, 28);
    a.ldx(1, rBaseA, 0);
    a.lsri(2, rLcg, 40);
    a.and_(2, 2, 28);
    a.ldx(3, rBaseA, 2);
    // Dependent consumers (window-sensitive, as in MIM).
    a.eor(9, 9, 1);
    a.lsri(10, 9, 3);
    a.add(11, 11, 10);
    a.eor(12, 12, 3);
    a.lsri(13, 12, 5);
    a.add(14, 14, 13);
    endLoop(a);
    return a.finish();
}

// Prefetchable streaming loads marching through a DRAM-sized region
// (dense within each line so latency can be hidden by a prefetcher).
isa::Program
buildMIP(uint64_t target, bool init)
{
    isa::Assembler a("MIP");
    uint64_t span = 2 * 1024 * 1024;
    uint64_t preamble = init ? (span / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseBig, span);
    a.loadImm(rBaseA, baseBig);
    a.movz(rOff, 0);
    a.loadImm(28, span - 64);
    // Body: 4 loads covering one line, advance one line, wrap by mask.
    beginLoop(a, itersFor(target, 7, preamble));
    a.ldx(0, rBaseA, rOff);
    a.addi(1, rOff, 16);
    a.ldx(2, rBaseA, 1);
    a.addi(3, rOff, 32);
    a.ldx(4, rBaseA, 3);
    a.addi(rOff, rOff, 64);
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Sequential loads over an L2-resident working set (L1 misses, L2
// hits once warm).
isa::Program
buildML2(uint64_t target, bool init)
{
    isa::Assembler a("ML2");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    a.movz(rOff, 0);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 5, preamble));
    a.ldx(0, rBaseA, rOff);
    a.ldx(1, rBaseA, rOff); // same line twice: one miss, one hit
    a.addi(rOff, rOff, 64);
    a.and_(rOff, rOff, 28);
    a.nop();
    endLoop(a);
    return a.finish();
}

// L2 load bandwidth: back-to-back line-stride loads.
isa::Program
buildML2BWld(uint64_t target, bool init)
{
    isa::Assembler a("ML2_BW_ld");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    a.movz(rOff, 0);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 12, preamble));
    for (int k = 0; k < 4; ++k) {
        a.ldx(static_cast<uint8_t>(k), rBaseA, rOff);
        a.addi(rOff, rOff, 64);
    }
    a.and_(rOff, rOff, 28);
    for (int k = 0; k < 3; ++k)
        a.nop();
    endLoop(a);
    return a.finish();
}

// L2 mixed load+store bandwidth.
isa::Program
buildML2BWldst(uint64_t target, bool init)
{
    isa::Assembler a("ML2_BW_ldst");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    a.movz(rOff, 0);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 9, preamble));
    for (int k = 0; k < 2; ++k) {
        a.ldx(0, rBaseA, rOff);
        a.stx(0, rBaseA, rOff);
        a.addi(rOff, rOff, 64);
    }
    a.and_(rOff, rOff, 28);
    a.nop();
    a.nop();
    endLoop(a);
    return a.finish();
}

// L2 store bandwidth: line-stride stores.
isa::Program
buildML2BWst(uint64_t target, bool init)
{
    isa::Assembler a("ML2_BW_st");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    a.movz(rOff, 0);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 9, preamble));
    for (int k = 0; k < 4; ++k) {
        a.stx(isa::regZero, rBaseA, rOff);
        a.addi(rOff, rOff, 64);
    }
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Random stores within an L2-sized set.
isa::Program
buildML2st(uint64_t target, bool init)
{
    isa::Assembler a("ML2_st");
    uint64_t preamble = init ? (l2Resident / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseB, l2Resident);
    a.loadImm(rBaseA, baseB);
    lcgSetup(a);
    a.loadImm(28, l2Resident - 64);
    beginLoop(a, itersFor(target, 5, preamble));
    lcgStep(a);
    a.lsri(0, rLcg, 17);
    a.and_(0, 0, 28);
    a.stx(1, rBaseA, 0);
    endLoop(a);
    return a.finish();
}

// Pointer chase through DRAM: each load's (zero) result feeds the next
// address, serializing on memory latency like a linked-list walk.
isa::Program
buildMM(uint64_t target, bool init)
{
    isa::Assembler a("MM");
    uint64_t preamble = init ? (dramSpan / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseBig, dramSpan);
    a.loadImm(rBaseA, baseBig);
    lcgSetup(a);
    a.loadImm(28, dramSpan - 64);
    beginLoop(a, itersFor(target, 6, preamble));
    a.ldx(0, rBaseA, rOff);      // serial: address depends on last load
    a.add(rLcg, rLcg, 0);        // fold the loaded value into the state
    a.mul(rLcg, rLcg, rLcgA);
    a.addi(rLcg, rLcg, 12345);
    a.lsri(rOff, rLcg, 17);
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Pointer chase with a store to each visited node.
isa::Program
buildMMst(uint64_t target, bool init)
{
    isa::Assembler a("MM_st");
    uint64_t preamble = init ? (dramSpan / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseBig, dramSpan);
    a.loadImm(rBaseA, baseBig);
    lcgSetup(a);
    a.loadImm(28, dramSpan - 64);
    beginLoop(a, itersFor(target, 7, preamble));
    a.ldx(0, rBaseA, rOff);
    a.stx(rLcg, rBaseA, rOff);   // dirty the node
    a.add(rLcg, rLcg, 0);
    a.mul(rLcg, rLcg, rLcgA);
    a.addi(rLcg, rLcg, 12345);
    a.lsri(rOff, rLcg, 17);
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Dynamically computed addresses over a mid-sized set: the benchmark
// whose uninitialized variant exposed the zero-page modeling anecdote.
isa::Program
buildMDyn(uint64_t target, bool init)
{
    isa::Assembler a("M_Dyn");
    uint64_t span = 4 * 1024 * 1024;
    uint64_t preamble = init ? (span / 4096) * 4 + 10 : 10;
    if (init)
        initRegion(a, baseBig, span);
    a.loadImm(rBaseA, baseBig);
    lcgSetup(a);
    a.loadImm(28, span - 64);
    beginLoop(a, itersFor(target, 8, preamble));
    lcgStep(a);
    a.lsri(0, rLcg, 17);
    a.and_(0, 0, 28);
    a.ldx(1, rBaseA, 0);
    a.add(2, 2, 1);
    a.lsri(3, rLcg, 40);
    a.and_(3, 3, 28);
    a.ldx(4, rBaseA, 3);
    endLoop(a);
    return a.finish();
}

} // namespace raceval::ubench::detail
