/**
 * @file
 * Control-flow micro-benchmarks (Table I, second group): branch
 * patterns from trivially predictable to random, large flush
 * penalties, call/return depths exercising the RAS, and indirect
 * branches (case statements) -- the CS benches are the ones that
 * exposed the missing indirect-branch support in the paper (§IV-B).
 */

#include "ubench/builders.hh"

#include "ubench/ubench.hh"

namespace raceval::ubench::detail
{

// Always-taken conditional branch.
isa::Program
buildCCa(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CCa");
    a.movz(0, 1);
    beginLoop(a, itersFor(target, 5, 2));
    a.cbnz(0, "taken"); // always taken
    a.nop();            // never executed (kept for code layout)
    a.label("taken");
    a.addi(1, 1, 1);
    a.addi(2, 2, 1);
    a.addi(3, 3, 1);
    a.nop();
    endLoop(a);
    return a.finish();
}

// Strictly alternating branch: perfect for history predictors, a
// pathological case for bimodal counters.
isa::Program
buildCCe(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CCe");
    a.movz(0, 0);
    beginLoop(a, itersFor(target, 6, 2));
    a.eori(0, 0, 1);
    a.cbnz(0, "skip");
    a.addi(1, 1, 1);
    a.b("join");
    a.label("skip");
    a.addi(2, 2, 1);
    a.label("join");
    a.addi(3, 3, 1);
    endLoop(a);
    return a.finish();
}

// Hard (pseudo-random) branch: ~50% mispredict whatever the predictor.
isa::Program
buildCCh(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CCh");
    lcgSetup(a);
    beginLoop(a, itersFor(target, 7, 6));
    lcgStep(a);
    a.lsri(0, rLcg, 33);
    a.andi(0, 0, 1);
    a.cbnz(0, "skip");
    a.addi(1, 1, 1);
    a.label("skip");
    a.addi(2, 2, 1);
    endLoop(a);
    return a.finish();
}

// Hard branches with stores on both paths.
isa::Program
buildCChSt(uint64_t target, bool init)
{
    isa::Assembler a("CCh_st");
    uint64_t preamble = init ? 4 + 10 : 10;
    if (init)
        initRegion(a, 0x100000, 4096);
    lcgSetup(a);
    a.loadImm(rBaseA, 0x100000);
    beginLoop(a, itersFor(target, 8, preamble));
    lcgStep(a);
    a.lsri(0, rLcg, 33);
    a.andi(0, 0, 1);
    a.cbnz(0, "skip");
    a.str(1, rBaseA, 0, 8);
    a.label("skip");
    a.str(2, rBaseA, 64, 8);
    a.addi(2, 2, 1);
    endLoop(a);
    return a.finish();
}

// Nested loop branches: the classic trivially predictable pattern.
isa::Program
buildCCl(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CCl");
    // Outer loop body: inner loop of 16 x 2 insts + setup = ~35 insts.
    beginLoop(a, itersFor(target, 35, 2));
    a.movz(0, 16);
    a.label("inner");
    a.addi(1, 1, 1);
    a.subi(0, 0, 1);
    a.cbnz(0, "inner");
    a.nop();
    endLoop(a);
    return a.finish();
}

// Biased branch: taken 7 of 8 iterations.
isa::Program
buildCCm(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CCm");
    lcgSetup(a);
    beginLoop(a, itersFor(target, 7, 6));
    lcgStep(a);
    a.lsri(0, rLcg, 33);
    a.andi(0, 0, 7);
    a.cbnz(0, "skip"); // taken with p = 7/8
    a.addi(1, 1, 1);
    a.label("skip");
    a.addi(2, 2, 1);
    endLoop(a);
    return a.finish();
}

// Large flush penalty: a random branch whose condition resolves behind
// a long-latency divide, so every mispredict costs resolution + flush.
isa::Program
buildCF1(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CF1");
    lcgSetup(a);
    a.movz(28, 3);
    beginLoop(a, itersFor(target, 8, 7));
    lcgStep(a);
    a.lsri(0, rLcg, 33);
    a.udiv(1, 0, 28);    // long-latency producer
    a.andi(1, 1, 1);
    a.cbnz(1, "skip");
    a.addi(2, 2, 1);
    a.label("skip");
    endLoop(a);
    return a.finish();
}

// Direct calls at depth 1: BL/RET pairs exercising the RAS gently.
isa::Program
buildCRd(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CRd");
    a.b("start");
    a.label("leaf");
    a.addi(0, 0, 1);
    a.addi(1, 1, 1);
    a.ret();
    a.label("start");
    beginLoop(a, itersFor(target, 6, 3));
    a.bl("leaf");
    a.nop();
    endLoop(a);
    return a.finish();
}

// Deep call chains: depth 8 fills the true RAS exactly and
// overflows smaller guesses.
isa::Program
buildCRf(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CRf");
    a.b("start");
    // f7 is the leaf; f0 calls f1 calls ... f7. The link register is
    // spilled to a software stack (x28) like a real compiler would.
    for (int depth = 0; depth < 8; ++depth) {
        a.label("f" + std::to_string(depth));
        if (depth < 7) {
            a.str(isa::regLink, 28, 0, 8);
            a.addi(28, 28, 8);
            a.bl("f" + std::to_string(depth + 1));
            a.subi(28, 28, 8);
            a.ldr(isa::regLink, 28, 0, 8);
        } else {
            a.addi(0, 0, 1);
        }
        a.ret();
    }
    a.label("start");
    a.loadImm(28, 0x200000); // software stack
    // Dynamic body: bl + 7 frames x 6 + leaf 2 + nop ~= 48 insts.
    beginLoop(a, itersFor(target, 48, 20));
    a.bl("f0");
    a.nop();
    endLoop(a);
    return a.finish();
}

// Mixed call targets: two leaves alternating, stressing the BTB.
isa::Program
buildCRm(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("CRm");
    a.b("start");
    a.label("leaf_a");
    a.addi(0, 0, 1);
    a.ret();
    a.label("leaf_b");
    a.addi(1, 1, 1);
    a.ret();
    a.label("start");
    a.movz(2, 0);
    beginLoop(a, itersFor(target, 10, 4));
    a.eori(2, 2, 1);
    a.cbnz(2, "call_b");
    a.bl("leaf_a");
    a.b("join");
    a.label("call_b");
    a.bl("leaf_b");
    a.label("join");
    a.nop();
    endLoop(a);
    return a.finish();
}

namespace
{

/**
 * Case-statement kernel: an indirect branch through a jump table whose
 * target cycles with the given period. History-based indirect
 * predictors learn the cycle; a BTB's last-target guess almost always
 * misses.
 */
isa::Program
buildCase(const char *name, uint64_t target, unsigned period)
{
    isa::Assembler a(name);
    constexpr unsigned cases = 8;
    // Four-instruction slot for the jump-table base, patched once the
    // case block's pc is known (fixed size so the patch lines up).
    size_t base_slot = a.here();
    a.movz(rBaseA, 0, 0);
    a.movk(rBaseA, 0, 1);
    a.movk(rBaseA, 0, 2);
    a.movk(rBaseA, 0, 3);
    a.movz(0, 0);         // selector counter
    a.loadImm(28, period);
    // Body: selector = counter % period (period <= cases); target =
    // case selector. Each case is 4 instructions (16 bytes).
    beginLoop(a, itersFor(target, 11u + 3, 5));
    a.addi(0, 0, 1);
    a.udiv(1, 0, 28);
    a.mul(1, 1, 28);
    a.sub(1, 0, 1);      // 1 = counter % period
    a.lsli(2, 1, 4);     // x16 bytes per case
    a.add(2, rBaseA, 2);
    a.br(2);
    size_t case0_index = a.here();
    for (unsigned c = 0; c < cases; ++c) {
        a.addi(3, 3, static_cast<int16_t>(c));
        a.addi(4, 4, 1);
        a.nop();
        a.b("join");
    }
    a.label("join");
    a.nop();
    endLoop(a);
    isa::Program prog = a.finish();
    // Patch the table base slot now that the first case's pc is known.
    uint64_t table_pc = prog.pcOf(case0_index);
    prog.code[base_slot + 0] = isa::encodeWide(
        isa::Opcode::Movz, rBaseA, 0,
        static_cast<uint16_t>(table_pc & 0xffff));
    for (uint8_t hw = 1; hw < 4; ++hw) {
        prog.code[base_slot + hw] = isa::encodeWide(
            isa::Opcode::Movk, rBaseA, hw,
            static_cast<uint16_t>((table_pc >> (16 * hw)) & 0xffff));
    }
    return prog;
}

} // namespace

// Case statement, long cycle (8 targets).
isa::Program
buildCS1(uint64_t target, bool init)
{
    (void)init;
    return buildCase("CS1", target, 8);
}

// Case statement, short cycle (3 targets).
isa::Program
buildCS3(uint64_t target, bool init)
{
    (void)init;
    return buildCase("CS3", target, 3);
}

} // namespace raceval::ubench::detail
