/**
 * @file
 * Data-parallel, execution-unit and store-intensive micro-benchmarks
 * (Table I, groups three to five): independent FP/SIMD streams,
 * float/double conversion chains, dependency chains of varying depth,
 * and store-buffer pressure patterns.
 */

#include "ubench/builders.hh"

#include "ubench/ubench.hh"

namespace raceval::ubench::detail
{

namespace
{

constexpr uint64_t baseA = 0x00100000;
constexpr uint64_t baseB = 0x00180000;
constexpr uint64_t baseC = 0x00200000;
constexpr uint64_t vecBytes = 8192; // L1-resident vectors

/** Shared preamble: three L1-resident vectors, optionally touched. */
uint64_t
vectorPreamble(isa::Assembler &a, bool init)
{
    uint64_t preamble = 12;
    if (init) {
        initRegion(a, baseA, vecBytes, "_a");
        initRegion(a, baseB, vecBytes, "_b");
        initRegion(a, baseC, vecBytes, "_c");
        preamble += 3 * (vecBytes / 4096) * 4;
    }
    a.loadImm(rBaseA, baseA);
    a.loadImm(rBaseB, baseB);
    a.loadImm(rBaseC, baseC);
    a.loadImm(28, vecBytes - 64);
    a.movz(rOff, 0);
    return preamble;
}

} // namespace

// Data-parallel double add: a[i] = b[i] + c[i], unrolled by four.
isa::Program
buildDP1d(uint64_t target, bool init)
{
    isa::Assembler a("DP1d");
    uint64_t preamble = vectorPreamble(a, init);
    beginLoop(a, itersFor(target, 18, preamble));
    for (int k = 0; k < 4; ++k) {
        int16_t off = static_cast<int16_t>(8 * k);
        a.ldrf(static_cast<uint8_t>(2 * k), rBaseB, off, 8);
        a.ldrf(static_cast<uint8_t>(2 * k + 1), rBaseC, off, 8);
        a.fadd(static_cast<uint8_t>(16 + k),
               static_cast<uint8_t>(2 * k),
               static_cast<uint8_t>(2 * k + 1));
        a.strf(static_cast<uint8_t>(16 + k), rBaseA, off, 8);
    }
    a.addi(rOff, rOff, 32);
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Float flavour of DP1d (4-byte elements).
isa::Program
buildDP1f(uint64_t target, bool init)
{
    isa::Assembler a("DP1f");
    uint64_t preamble = vectorPreamble(a, init);
    beginLoop(a, itersFor(target, 18, preamble));
    for (int k = 0; k < 4; ++k) {
        int16_t off = static_cast<int16_t>(4 * k);
        a.ldrf(static_cast<uint8_t>(2 * k), rBaseB, off, 4);
        a.ldrf(static_cast<uint8_t>(2 * k + 1), rBaseC, off, 4);
        a.fadd(static_cast<uint8_t>(16 + k),
               static_cast<uint8_t>(2 * k),
               static_cast<uint8_t>(2 * k + 1));
        a.strf(static_cast<uint8_t>(16 + k), rBaseA, off, 4);
    }
    a.addi(rOff, rOff, 16);
    a.and_(rOff, rOff, 28);
    endLoop(a);
    return a.finish();
}

// Conversion-heavy kernel: float loads widened, converted, narrowed.
isa::Program
buildDPcvt(uint64_t target, bool init)
{
    isa::Assembler a("DPcvt");
    uint64_t preamble = vectorPreamble(a, init);
    beginLoop(a, itersFor(target, 12, preamble));
    for (int k = 0; k < 2; ++k) {
        int16_t off = static_cast<int16_t>(4 * k);
        a.ldrf(static_cast<uint8_t>(k), rBaseB, off, 4);
        a.fcvt(static_cast<uint8_t>(4 + k), static_cast<uint8_t>(k));
        a.fadd(static_cast<uint8_t>(8 + k), static_cast<uint8_t>(4 + k),
               static_cast<uint8_t>(4 + k));
        a.fcvt(static_cast<uint8_t>(12 + k),
               static_cast<uint8_t>(8 + k));
        a.strf(static_cast<uint8_t>(12 + k), rBaseA, off, 4);
    }
    a.addi(rOff, rOff, 8);
    a.nop();
    endLoop(a);
    return a.finish();
}

// Stream triad: a[i] = b[i] + s * c[i] (fmadd form).
isa::Program
buildDPT(uint64_t target, bool init)
{
    isa::Assembler a("DPT");
    uint64_t preamble = vectorPreamble(a, init);
    beginLoop(a, itersFor(target, 14, preamble));
    for (int k = 0; k < 4; ++k) {
        int16_t off = static_cast<int16_t>(8 * k);
        a.ldrf(static_cast<uint8_t>(k), rBaseB, off, 8);
        a.ldrf(static_cast<uint8_t>(4 + k), rBaseC, off, 8);
        // d(16+k) = d(4+k) * d15 + d(k)
        a.fmadd(static_cast<uint8_t>(16 + k),
                static_cast<uint8_t>(4 + k), 15,
                static_cast<uint8_t>(k));
    }
    a.strf(16, rBaseA, 0, 8);
    a.strf(17, rBaseA, 8, 8);
    endLoop(a);
    return a.finish();
}

// SIMD triad (vector classes with their own latencies/pipes).
isa::Program
buildDPTd(uint64_t target, bool init)
{
    isa::Assembler a("DPTd");
    uint64_t preamble = vectorPreamble(a, init);
    beginLoop(a, itersFor(target, 12, preamble));
    for (int k = 0; k < 2; ++k) {
        int16_t off = static_cast<int16_t>(8 * k);
        a.ldrf(static_cast<uint8_t>(k), rBaseB, off, 8);
        a.ldrf(static_cast<uint8_t>(4 + k), rBaseC, off, 8);
        a.vmul(static_cast<uint8_t>(8 + k), static_cast<uint8_t>(4 + k),
               15);
        a.vadd(static_cast<uint8_t>(12 + k), static_cast<uint8_t>(8 + k),
               static_cast<uint8_t>(k));
        a.strf(static_cast<uint8_t>(12 + k), rBaseA, off, 8);
    }
    a.nop();
    a.nop();
    endLoop(a);
    return a.finish();
}

// Serial FP dependency chain (distance 1): pure FP-add latency.
isa::Program
buildED1(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("ED1");
    beginLoop(a, itersFor(target, 8, 2));
    for (int k = 0; k < 8; ++k)
        a.fadd(0, 0, 1); // every op depends on the previous one
    endLoop(a);
    return a.finish();
}

// Independent FP stream of varying complexity: adds, multiplies and
// the long-latency divide/sqrt pipes (their latency and pipelining is
// only observable here and in povray-like code).
isa::Program
buildEF(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("EF");
    beginLoop(a, itersFor(target, 14, 2));
    for (int k = 0; k < 6; ++k)
        a.fadd(static_cast<uint8_t>(k), static_cast<uint8_t>(k), 8);
    for (int k = 0; k < 6; ++k)
        a.fmul(static_cast<uint8_t>(16 + k), static_cast<uint8_t>(16 + k),
               9);
    a.fdiv(24, 25, 26);
    a.fsqrt(27, 28);
    endLoop(a);
    return a.finish();
}

// Independent integer stream: superscalar ALU throughput.
isa::Program
buildEI(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("EI");
    beginLoop(a, itersFor(target, 12, 2));
    for (int k = 0; k < 6; ++k)
        a.addi(static_cast<uint8_t>(k), static_cast<uint8_t>(k), 1);
    for (int k = 0; k < 6; ++k)
        a.eori(static_cast<uint8_t>(6 + k), static_cast<uint8_t>(6 + k),
               21);
    endLoop(a);
    return a.finish();
}

// Serial integer multiply chain (distance 1): IntMul latency.
isa::Program
buildEM1(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("EM1");
    a.movz(1, 3);
    beginLoop(a, itersFor(target, 8, 3));
    for (int k = 0; k < 8; ++k)
        a.mul(0, 0, 1);
    endLoop(a);
    return a.finish();
}

// Five interleaved multiply chains: multiplier throughput.
isa::Program
buildEM5(uint64_t target, bool init)
{
    (void)init;
    isa::Assembler a("EM5");
    a.movz(9, 3);
    beginLoop(a, itersFor(target, 10, 3));
    for (int k = 0; k < 10; ++k)
        a.mul(static_cast<uint8_t>(k % 5), static_cast<uint8_t>(k % 5),
              9);
    endLoop(a);
    return a.finish();
}

// Streaming stores into an L2-sized buffer: write-allocate pressure.
isa::Program
buildSTL2(uint64_t target, bool init)
{
    isa::Assembler a("STL2");
    uint64_t span = 256 * 1024;
    uint64_t preamble = init ? (span / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseC, span);
    a.loadImm(rBaseA, baseC);
    a.movz(rOff, 0);
    a.loadImm(28, span - 64);
    beginLoop(a, itersFor(target, 5, preamble));
    a.stx(1, rBaseA, rOff);
    a.addi(rOff, rOff, 64);
    a.and_(rOff, rOff, 28);
    a.addi(1, 1, 1);
    a.nop();
    endLoop(a);
    return a.finish();
}

// Bursty byte stores: groups of eight narrow stores back to back.
isa::Program
buildSTL2b(uint64_t target, bool init)
{
    isa::Assembler a("STL2b");
    uint64_t span = 256 * 1024;
    uint64_t preamble = init ? (span / 4096) * 4 + 8 : 8;
    if (init)
        initRegion(a, baseC, span);
    a.loadImm(rBaseA, baseC);
    a.movz(rOff, 0);
    a.loadImm(28, span - 64);
    beginLoop(a, itersFor(target, 11, preamble));
    for (int k = 0; k < 8; ++k)
        a.stx(static_cast<uint8_t>(k % 4), rBaseA, rOff, 1);
    a.addi(rOff, rOff, 64);
    a.and_(rOff, rOff, 28);
    a.nop();
    endLoop(a);
    return a.finish();
}

// Repeated stores into one hot line: store buffer and drain rate.
isa::Program
buildSTc(uint64_t target, bool init)
{
    (void)init; // single line, written immediately
    isa::Assembler a("STc");
    a.loadImm(rBaseA, baseA);
    beginLoop(a, itersFor(target, 8, 6));
    for (int k = 0; k < 8; ++k)
        a.str(static_cast<uint8_t>(k % 4), rBaseA,
              static_cast<int16_t>(8 * (k % 8)), 8);
    endLoop(a);
    return a.finish();
}

} // namespace raceval::ubench::detail
