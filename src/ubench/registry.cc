#include "ubench/ubench.hh"

#include "common/log.hh"
#include "ubench/builders.hh"

namespace raceval::ubench
{

using namespace detail;

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Memory: return "memory-hierarchy";
      case Category::Control: return "control-flow";
      case Category::DataParallel: return "data-parallel";
      case Category::Execution: return "execution";
      case Category::Store: return "store-intensive";
      default: panic("bad category %d", static_cast<int>(cat));
    }
}

uint64_t
scaledCount(uint64_t paper_count, uint64_t cap)
{
    uint64_t scaled = paper_count;
    while (scaled > cap)
        scaled /= 2;
    return scaled;
}

const std::vector<UbenchInfo> &
all()
{
    static const std::vector<UbenchInfo> suite = {
        // Memory hierarchy (Table I row 1).
        { "MC", Category::Memory, 1'800'000, buildMC },
        { "MCS", Category::Memory, 115'000, buildMCS },
        { "MD", Category::Memory, 33'000, buildMD },
        { "MI", Category::Memory, 22'000'000, buildMI },
        { "MIM", Category::Memory, 5'250'000, buildMIM },
        { "MIM2", Category::Memory, 214'000, buildMIM2 },
        { "MIP", Category::Memory, 66'000'000, buildMIP },
        { "ML2", Category::Memory, 131'000, buildML2 },
        { "ML2_BW_ld", Category::Memory, 3'150'000, buildML2BWld },
        { "ML2_BW_ldst", Category::Memory, 107'000, buildML2BWldst },
        { "ML2_BW_st", Category::Memory, 8'400, buildML2BWst },
        { "ML2_st", Category::Memory, 164'000, buildML2st },
        { "MM", Category::Memory, 1'050'000, buildMM },
        { "MM_st", Category::Memory, 1'970'000, buildMMst },
        { "M_Dyn", Category::Memory, 1'500'000, buildMDyn },
        // Control flow (Table I row 2).
        { "CCa", Category::Control, 82'000, buildCCa },
        { "CCe", Category::Control, 657'000, buildCCe },
        { "CCh", Category::Control, 2'600'000, buildCCh },
        { "CCh_st", Category::Control, 157'000, buildCChSt },
        { "CCl", Category::Control, 1'380'000, buildCCl },
        { "CCm", Category::Control, 656'000, buildCCm },
        { "CF1", Category::Control, 1'270'000, buildCF1 },
        { "CRd", Category::Control, 599'000, buildCRd },
        { "CRf", Category::Control, 133'000, buildCRf },
        { "CRm", Category::Control, 399'000, buildCRm },
        { "CS1", Category::Control, 58'000, buildCS1 },
        { "CS3", Category::Control, 34'500'000, buildCS3 },
        // Data parallel (Table I row 3).
        { "DP1d", Category::DataParallel, 5'200'000, buildDP1d },
        { "DP1f", Category::DataParallel, 5'200'000, buildDP1f },
        { "DPcvt", Category::DataParallel, 36'700'000, buildDPcvt },
        { "DPT", Category::DataParallel, 542'000, buildDPT },
        { "DPTd", Category::DataParallel, 1'180'000, buildDPTd },
        // Execution (Table I row 4).
        { "ED1", Category::Execution, 164'000, buildED1 },
        { "EF", Category::Execution, 451'000, buildEF },
        { "EI", Category::Execution, 5'240'000, buildEI },
        { "EM1", Category::Execution, 65'000, buildEM1 },
        { "EM5", Category::Execution, 328'000, buildEM5 },
        // Store intensive (Table I row 5).
        { "STL2", Category::Store, 4'000, buildSTL2 },
        { "STL2b", Category::Store, 1'120'000, buildSTL2b },
        { "STc", Category::Store, 400'000, buildSTc },
    };
    return suite;
}

const UbenchInfo *
find(const std::string &name)
{
    for (const UbenchInfo &info : all()) {
        if (name == info.name)
            return &info;
    }
    return nullptr;
}

isa::Program
build(const UbenchInfo &info, bool init_arrays)
{
    return info.builder(scaledCount(info.paperDynInsts), init_arrays);
}

namespace detail
{

void
beginLoop(isa::Assembler &a, uint64_t iters)
{
    a.loadImm(rCnt, iters);
    a.label("loop");
}

void
endLoop(isa::Assembler &a)
{
    a.subi(rCnt, rCnt, 1);
    a.cbnz(rCnt, "loop");
    a.halt();
}

void
lcgSetup(isa::Assembler &a, uint64_t seed)
{
    a.loadImm(rLcgA, 6364136223846793005ull);
    a.loadImm(rLcg, seed);
}

void
lcgStep(isa::Assembler &a)
{
    a.mul(rLcg, rLcg, rLcgA);
    a.addi(rLcg, rLcg, 12345);
}

void
initRegion(isa::Assembler &a, uint64_t base, uint64_t bytes,
           const char *label_suffix)
{
    std::string label = std::string("init_region") + label_suffix;
    uint64_t pages = (bytes + 4095) / 4096;
    a.loadImm(26, base);
    a.loadImm(27, pages);
    a.label(label);
    a.str(isa::regZero, 26, 0, 8);
    a.addi(26, 26, 4096);
    a.subi(27, 27, 1);
    a.cbnz(27, label);
}

uint64_t
itersFor(uint64_t target_insts, uint64_t body_insts, uint64_t preamble)
{
    uint64_t body = body_insts + 2; // loop decrement + branch
    if (target_insts <= preamble + body)
        return 1;
    return (target_insts - preamble) / body;
}

} // namespace detail

} // namespace raceval::ubench
