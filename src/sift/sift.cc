#include "sift/sift.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace raceval::sift
{

namespace
{

const char magic[8] = {'R', 'V', 'S', 'I', 'F', 'T', '0', '1'};

void
putVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

uint64_t
getVarint(const std::vector<uint8_t> &bytes, size_t &cursor)
{
    uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        RV_ASSERT(cursor < bytes.size(), "sift: truncated varint");
        uint8_t byte = bytes[cursor++];
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        RV_ASSERT(shift < 64, "sift: varint overflow");
    }
}

uint64_t
zigzagEncode(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1)
        ^ static_cast<uint64_t>(value >> 63);
}

int64_t
zigzagDecode(uint64_t value)
{
    return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

} // namespace

std::vector<uint8_t>
encodeTrace(const isa::Program &prog, vm::TraceSource &source)
{
    source.reset();

    // Record the event stream first so the instruction count is known
    // before the header is laid down.
    std::vector<uint8_t> events;
    uint64_t count = 0;
    uint64_t prev_mem_addr = 0;
    vm::DynInst dyn;
    while (source.next(dyn)) {
        ++count;
        if (dyn.inst.isLoad || dyn.inst.isStore) {
            int64_t delta = static_cast<int64_t>(dyn.memAddr)
                - static_cast<int64_t>(prev_mem_addr);
            putVarint(events, zigzagEncode(delta));
            prev_mem_addr = dyn.memAddr;
        } else if (dyn.inst.isBranch) {
            events.push_back(dyn.taken ? 1 : 0);
            if (dyn.taken) {
                int64_t delta = (static_cast<int64_t>(dyn.nextPc)
                                 - static_cast<int64_t>(dyn.pc)) / 4;
                putVarint(events, zigzagEncode(delta));
            }
        }
    }

    std::vector<uint8_t> out;
    out.insert(out.end(), magic, magic + sizeof(magic));
    putVarint(out, prog.name.size());
    out.insert(out.end(), prog.name.begin(), prog.name.end());
    putVarint(out, prog.codeBase);
    putVarint(out, prog.code.size());
    for (uint32_t word : prog.code) {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<uint8_t>(word >> (8 * i)));
    }
    putVarint(out, prog.data.size());
    for (const auto &segment : prog.data) {
        putVarint(out, segment.base);
        putVarint(out, segment.bytes.size());
        out.insert(out.end(), segment.bytes.begin(), segment.bytes.end());
    }
    putVarint(out, count);
    out.insert(out.end(), events.begin(), events.end());
    return out;
}

void
writeTrace(const std::string &path, const isa::Program &prog,
           vm::TraceSource &source)
{
    std::vector<uint8_t> bytes = encodeTrace(prog, source);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("sift: cannot open '%s' for writing", path.c_str());
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (written != bytes.size())
        fatal("sift: short write to '%s'", path.c_str());
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("sift: cannot open '%s' for reading", path.c_str());
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (read != bytes.size())
        fatal("sift: short read from '%s'", path.c_str());
    return bytes;
}

SiftTrace::SiftTrace(std::vector<uint8_t> buffer,
                     isa::DecoderOptions decoder_options)
    : bytes(std::move(buffer))
{
    RV_ASSERT(bytes.size() >= sizeof(magic)
              && std::memcmp(bytes.data(), magic, sizeof(magic)) == 0,
              "sift: bad magic");
    size_t pos = sizeof(magic);

    uint64_t name_len = getVarint(bytes, pos);
    RV_ASSERT(pos + name_len <= bytes.size(), "sift: truncated name");
    progName.assign(reinterpret_cast<const char *>(bytes.data() + pos),
                    name_len);
    pos += name_len;
    prog.name = progName;

    prog.codeBase = getVarint(bytes, pos);
    uint64_t code_words = getVarint(bytes, pos);
    RV_ASSERT(pos + 4 * code_words <= bytes.size(), "sift: truncated code");
    prog.code.resize(code_words);
    for (uint64_t i = 0; i < code_words; ++i) {
        uint32_t word = 0;
        for (int b = 0; b < 4; ++b)
            word |= static_cast<uint32_t>(bytes[pos++]) << (8 * b);
        prog.code[i] = word;
    }

    uint64_t segments = getVarint(bytes, pos);
    for (uint64_t s = 0; s < segments; ++s) {
        uint64_t base = getVarint(bytes, pos);
        uint64_t len = getVarint(bytes, pos);
        RV_ASSERT(pos + len <= bytes.size(), "sift: truncated data seg");
        prog.addData(base, std::vector<uint8_t>(
            bytes.begin() + static_cast<long>(pos),
            bytes.begin() + static_cast<long>(pos + len)));
        pos += len;
    }

    totalInsts = getVarint(bytes, pos);
    eventStart = pos;

    isa::Decoder decoder(decoder_options);
    decoded.resize(prog.code.size());
    for (size_t i = 0; i < prog.code.size(); ++i) {
        if (!decoder.decode(prog.code[i], decoded[i]))
            fatal("sift: undecodable word 0x%08x in trace '%s'",
                  prog.code[i], progName.c_str());
    }
}

SiftCursor::SiftCursor(std::shared_ptr<const SiftTrace> trace_)
    : trace(std::move(trace_))
{
    RV_ASSERT(trace != nullptr, "sift: cursor over null trace");
    reset();
}

void
SiftCursor::reset()
{
    cursor = trace->eventStart;
    emitted = 0;
    pc = trace->prog.entry();
    prevMemAddr = 0;
}

bool
SiftCursor::next(vm::DynInst &out)
{
    if (emitted >= trace->totalInsts)
        return false;

    uint64_t index = (pc - trace->prog.codeBase) / 4;
    RV_ASSERT(pc >= trace->prog.codeBase && index < trace->decoded.size(),
              "sift: replay pc 0x%llx out of range",
              static_cast<unsigned long long>(pc));

    const isa::DecodedInst &inst = trace->decoded[index];
    out.pc = pc;
    out.inst = inst;
    out.memAddr = 0;
    out.taken = false;
    out.nextPc = pc + 4;

    if (inst.isLoad || inst.isStore) {
        int64_t delta = zigzagDecode(getVarint(trace->bytes, cursor));
        out.memAddr = static_cast<uint64_t>(
            static_cast<int64_t>(prevMemAddr) + delta);
        prevMemAddr = out.memAddr;
    } else if (inst.isBranch) {
        RV_ASSERT(cursor < trace->bytes.size(),
                  "sift: truncated branch event");
        uint8_t taken = trace->bytes[cursor++];
        out.taken = taken != 0;
        if (out.taken) {
            int64_t delta = zigzagDecode(getVarint(trace->bytes, cursor));
            out.nextPc = static_cast<uint64_t>(
                static_cast<int64_t>(pc) + 4 * delta);
        }
    }

    pc = out.nextPc;
    ++emitted;
    return true;
}

SiftReader::SiftReader(std::vector<uint8_t> buffer,
                       isa::DecoderOptions decoder_options)
    : trace(std::make_shared<const SiftTrace>(std::move(buffer),
                                              decoder_options)),
      cursor(trace)
{
}

SiftReader::SiftReader(const std::string &path,
                       isa::DecoderOptions decoder_options)
    : SiftReader(readFile(path), decoder_options)
{
}

} // namespace raceval::sift
