/**
 * @file
 * SIFT-like binary instruction trace format (record once, replay many).
 *
 * Mirrors the Sniper Instruction Trace Format workflow from the paper:
 * the front-end (functional core, standing in for DynamoRIO on the ARM
 * board) records a trace once; timing simulations replay it any number
 * of times, possibly on a different machine. The format embeds the
 * static program image and stores only the dynamic facts (memory
 * addresses, branch outcomes) as zigzag-varint deltas, so traces stay
 * compact.
 *
 * Layout (little-endian):
 *   magic "RVSIFT01"
 *   varint nameLen, name bytes
 *   varint codeBase, varint codeWords, raw 4-byte words
 *   varint dataSegments, each: varint base, varint len, raw bytes
 *   varint instCount
 *   event bytes (per instruction, in execution order):
 *     load/store: zigzag varint (memAddr - prevMemAddr)
 *     branch:     byte 0|1 (taken); if taken zigzag varint
 *                 (target - pc) / 4
 *     other:      nothing
 */

#ifndef RACEVAL_SIFT_SIFT_HH
#define RACEVAL_SIFT_SIFT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "vm/trace.hh"

namespace raceval::sift
{

/**
 * Encode a full trace into a byte buffer.
 *
 * Drains the source to completion (the source is reset() first so the
 * recording always starts from the beginning).
 *
 * @param prog the program the source executes (embedded in the trace).
 * @param source dynamic stream to record.
 * @return the encoded trace bytes.
 */
std::vector<uint8_t> encodeTrace(const isa::Program &prog,
                                 vm::TraceSource &source);

/** Encode and write to a file; fatal() on I/O failure. */
void writeTrace(const std::string &path, const isa::Program &prog,
                vm::TraceSource &source);

/** Read a whole file into memory; fatal() on I/O failure. */
std::vector<uint8_t> readFile(const std::string &path);

/**
 * Replays a recorded trace as a TraceSource.
 *
 * The reader re-decodes the embedded program with its own Decoder, so
 * decoder fault injection can be applied at replay time -- just like
 * Sniper's back-end re-decoding SIFT input through Capstone.
 */
class SiftReader : public vm::TraceSource
{
  public:
    /** Construct from encoded bytes (takes ownership of the buffer). */
    explicit SiftReader(std::vector<uint8_t> buffer,
                        isa::DecoderOptions decoder_options = {});

    /** Construct by reading a trace file. */
    explicit SiftReader(const std::string &path,
                        isa::DecoderOptions decoder_options = {});

    bool next(vm::DynInst &out) override;
    void reset() override;
    const std::string &name() const override { return progName; }
    const isa::Program *program() const override { return &prog; }

    /** @return total instructions in the trace. */
    uint64_t instCount() const { return totalInsts; }

  private:
    void parseHeader(isa::DecoderOptions decoder_options);

    std::vector<uint8_t> bytes;
    std::string progName;
    isa::Program prog;
    std::vector<isa::DecodedInst> decoded;
    uint64_t totalInsts = 0;

    size_t eventStart = 0;  //!< byte offset of the event stream
    size_t cursor = 0;      //!< current byte offset
    uint64_t emitted = 0;   //!< instructions emitted so far
    uint64_t pc = 0;
    uint64_t prevMemAddr = 0;
};

} // namespace raceval::sift

#endif // RACEVAL_SIFT_SIFT_HH
