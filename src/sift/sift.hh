/**
 * @file
 * SIFT-like binary instruction trace format (record once, replay many).
 *
 * Mirrors the Sniper Instruction Trace Format workflow from the paper:
 * the front-end (functional core, standing in for DynamoRIO on the ARM
 * board) records a trace once; timing simulations replay it any number
 * of times, possibly on a different machine. The format embeds the
 * static program image and stores only the dynamic facts (memory
 * addresses, branch outcomes) as zigzag-varint deltas, so traces stay
 * compact.
 *
 * Layout (little-endian):
 *   magic "RVSIFT01"
 *   varint nameLen, name bytes
 *   varint codeBase, varint codeWords, raw 4-byte words
 *   varint dataSegments, each: varint base, varint len, raw bytes
 *   varint instCount
 *   event bytes (per instruction, in execution order):
 *     load/store: zigzag varint (memAddr - prevMemAddr)
 *     branch:     byte 0|1 (taken); if taken zigzag varint
 *                 (target - pc) / 4
 *     other:      nothing
 *
 * The parsed form is split into an immutable, shareable SiftTrace
 * (bytes + embedded program + static decode, parsed once) and
 * lightweight SiftCursor replay handles, so many concurrent timing
 * runs can replay one recording without re-parsing or copying it --
 * the backbone of the engine's TraceBank.
 */

#ifndef RACEVAL_SIFT_SIFT_HH
#define RACEVAL_SIFT_SIFT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "vm/trace.hh"

namespace raceval::sift
{

/**
 * Encode a full trace into a byte buffer.
 *
 * Drains the source to completion (the source is reset() first so the
 * recording always starts from the beginning).
 *
 * @param prog the program the source executes (embedded in the trace).
 * @param source dynamic stream to record.
 * @return the encoded trace bytes.
 */
std::vector<uint8_t> encodeTrace(const isa::Program &prog,
                                 vm::TraceSource &source);

/** Encode and write to a file; fatal() on I/O failure. */
void writeTrace(const std::string &path, const isa::Program &prog,
                vm::TraceSource &source);

/** Read a whole file into memory; fatal() on I/O failure. */
std::vector<uint8_t> readFile(const std::string &path);

/**
 * An immutable parsed trace: the encoded bytes plus the embedded
 * program re-decoded once.
 *
 * SiftTrace is safe to share across threads behind a shared_ptr; every
 * replay goes through its own SiftCursor, which carries all mutable
 * replay state. The trace re-decodes the embedded program with its own
 * Decoder, so decoder fault injection can be applied at replay time --
 * just like Sniper's back-end re-decoding SIFT input through Capstone.
 */
class SiftTrace
{
  public:
    /** Parse encoded bytes (takes ownership of the buffer). */
    explicit SiftTrace(std::vector<uint8_t> buffer,
                       isa::DecoderOptions decoder_options = {});

    const std::string &name() const { return progName; }
    const isa::Program &program() const { return prog; }

    /** @return total instructions in the trace. */
    uint64_t instCount() const { return totalInsts; }

    /** @return size of the encoded representation. */
    size_t encodedBytes() const { return bytes.size(); }

    /** @return static decode of instruction word i. */
    const isa::DecodedInst &decodedAt(size_t i) const { return decoded[i]; }

  private:
    friend class SiftCursor;

    std::vector<uint8_t> bytes;
    std::string progName;
    isa::Program prog;
    std::vector<isa::DecodedInst> decoded;
    uint64_t totalInsts = 0;
    size_t eventStart = 0; //!< byte offset of the event stream
};

/**
 * One replay of a shared SiftTrace as a TraceSource.
 *
 * Cursors are cheap (a shared_ptr plus a few counters); open as many
 * as you have concurrent timing runs.
 */
class SiftCursor final : public vm::TraceSource
{
  public:
    explicit SiftCursor(std::shared_ptr<const SiftTrace> trace);

    bool next(vm::DynInst &out) override;
    void reset() override;
    const std::string &name() const override { return trace->name(); }
    const isa::Program *program() const override
    {
        return &trace->program();
    }

  private:
    std::shared_ptr<const SiftTrace> trace;
    size_t cursor = 0;    //!< current byte offset in the event stream
    uint64_t emitted = 0; //!< instructions emitted so far
    uint64_t pc = 0;
    uint64_t prevMemAddr = 0;
};

/**
 * Replays a recorded trace as a TraceSource.
 *
 * Convenience wrapper owning a single-reader SiftTrace + SiftCursor
 * pair; use SiftTrace/SiftCursor directly to share one parsed trace
 * between many replays.
 */
class SiftReader : public vm::TraceSource
{
  public:
    /** Construct from encoded bytes (takes ownership of the buffer). */
    explicit SiftReader(std::vector<uint8_t> buffer,
                        isa::DecoderOptions decoder_options = {});

    /** Construct by reading a trace file. */
    explicit SiftReader(const std::string &path,
                        isa::DecoderOptions decoder_options = {});

    bool next(vm::DynInst &out) override { return cursor.next(out); }
    void reset() override { cursor.reset(); }
    const std::string &name() const override { return trace->name(); }
    const isa::Program *program() const override
    {
        return &trace->program();
    }

    /** @return total instructions in the trace. */
    uint64_t instCount() const { return trace->instCount(); }

  private:
    std::shared_ptr<const SiftTrace> trace;
    SiftCursor cursor;
};

} // namespace raceval::sift

#endif // RACEVAL_SIFT_SIFT_HH
