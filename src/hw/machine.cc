#include "hw/machine.hh"

#include "common/rng.hh"
#include "hw/detailed_inorder.hh"
#include "hw/detailed_ooo.hh"

namespace raceval::hw
{

namespace
{

/** FNV-1a over the benchmark name, for per-benchmark noise streams. */
uint64_t
hashName(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

PerfCounters
HwMachine::measure(vm::TraceSource &source)
{
    core::CoreStats stats = rawRun(source);

    PerfCounters perf;
    perf.benchmark = source.name();
    perf.instructions = stats.instructions;
    perf.branchMisses = stats.branch.mispredicts;
    perf.l1dMisses = stats.l1dMisses;
    perf.l2Misses = stats.l2Misses;

    // Deterministic per-benchmark multiplicative noise: the same
    // benchmark always measures the same (one stable board), different
    // benchmarks perturb independently.
    Rng rng(hparams.noiseSeed ^ hashName(source.name()));
    double factor = 1.0 + hparams.noiseStdDev * rng.nextGaussian();
    if (factor < 0.5)
        factor = 0.5;
    perf.cycles = static_cast<uint64_t>(
        static_cast<double>(stats.cycles) * factor + 0.5);
    return perf;
}

std::unique_ptr<HwMachine>
makeMachine(const HwParams &params, bool out_of_order)
{
    if (out_of_order)
        return std::make_unique<DetailedOoO>(params);
    return std::make_unique<DetailedInOrder>(params);
}

} // namespace raceval::hw
