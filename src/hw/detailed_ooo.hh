/**
 * @file
 * Detailed cycle-by-cycle out-of-order machine (the Cortex-A72
 * stand-in): explicit ROB, issue-queue wakeup/select each cycle,
 * per-port issue, post-retire store drain through a shared L1D port,
 * MSHR-limited memory-level parallelism, page walks, zero-page reads
 * and partial-forward replays -- the detail the abstract core::OooCore
 * abstracts away.
 */

#ifndef RACEVAL_HW_DETAILED_OOO_HH
#define RACEVAL_HW_DETAILED_OOO_HH

#include "hw/machine.hh"

namespace raceval::hw
{

/** Cycle-by-cycle out-of-order machine. */
class DetailedOoO : public HwMachine
{
  public:
    explicit DetailedOoO(const HwParams &params)
        : HwMachine(params)
    {
        hparams.core.validate();
    }

    core::CoreStats rawRun(vm::TraceSource &source) override;
};

} // namespace raceval::hw

#endif // RACEVAL_HW_DETAILED_OOO_HH
