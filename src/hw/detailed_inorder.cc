#include "hw/detailed_inorder.hh"

#include <deque>
#include <unordered_set>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "core/contention.hh"

namespace raceval::hw
{

using isa::OpClass;

namespace
{

constexpr uint64_t pageShift = 12;

/** A store sitting in (or draining from) the store buffer. */
struct StoreEntry
{
    uint64_t addr = 0;
    unsigned size = 0;
    uint64_t readyAt = 0;   //!< earliest drain start (issue cycle + 1)
    uint64_t drainDone = 0; //!< 0 while not yet draining
};

} // namespace

core::CoreStats
DetailedInOrder::rawRun(vm::TraceSource &source)
{
    const core::CoreParams &cp = hparams.core;

    // The hardware models memory with timed prefetch and bandwidth-
    // consuming prefetch fills -- detail the abstract model elides.
    cache::HierarchyParams hier = cp.mem;
    hier.timedPrefetch = true;
    hier.prefetchConsumesBandwidth = true;
    cache::MemoryHierarchy mem(hier, /*rng_seed=*/4242);
    branch::BranchUnit bp(cp.bp);
    core::ContentionModel fus(cp);

    source.reset();

    // --- machine state ----------------------------------------------------
    uint64_t cycle = 0;
    uint64_t fetch_stall_until = 0;
    uint64_t last_fetch_line = ~0ull;
    uint64_t max_event = 0;
    std::vector<uint64_t> reg_ready(isa::numIntRegs + isa::numFpRegs, 0);
    std::vector<uint64_t> mshr_busy(cp.mem.l1d.mshrs, 0);
    std::deque<StoreEntry> store_buffer;
    uint64_t drain_busy_until = 0;
    std::unordered_set<uint64_t> touched_pages;
    std::unordered_set<uint64_t> stored_pages;
    std::unordered_set<uint64_t> zero_pages;
    std::unordered_set<uint64_t> init_pages;

    if (const isa::Program *prog = source.program()) {
        for (const auto &segment : prog->data) {
            uint64_t first = segment.base >> pageShift;
            uint64_t last = (segment.base + segment.bytes.size())
                >> pageShift;
            for (uint64_t page = first; page <= last; ++page)
                init_pages.insert(page);
        }
    }

    core::CoreStats stats;
    vm::DynInst pending;
    bool have_pending = source.next(pending);
    // Per-pending earliest-issue bound (front end, MSHR retry), computed
    // lazily once per instruction.
    uint64_t pending_ready_at = 0;
    bool pending_seen = false;

    auto compute_fetch = [&](const vm::DynInst &dyn) {
        uint64_t line = dyn.pc / mem.lineBytes();
        uint64_t ready = fetch_stall_until;
        if (line != last_fetch_line) {
            last_fetch_line = line;
            cache::AccessResult fetch =
                mem.access(dyn.pc, dyn.pc, false, true, cycle);
            if (fetch.servedBy != cache::ServedBy::L1) {
                uint64_t bubble = fetch.latency - cp.mem.l1i.latency;
                if (cycle + bubble > ready)
                    ready = cycle + bubble;
            }
        }
        return ready;
    };

    // Drain one store per free-port cycle, serialized at the L1D.
    auto drain_stores = [&](bool port_free) {
        // Retire fully drained entries.
        while (!store_buffer.empty()
               && store_buffer.front().drainDone != 0
               && store_buffer.front().drainDone <= cycle) {
            if (store_buffer.front().drainDone > max_event)
                max_event = store_buffer.front().drainDone;
            store_buffer.pop_front();
        }
        if (!port_free || store_buffer.empty())
            return;
        StoreEntry &head = store_buffer.front();
        if (head.drainDone != 0 || head.readyAt > cycle
            || drain_busy_until > cycle)
            return;
        cache::AccessResult res =
            mem.access(head.addr, head.addr, true, false, cycle);
        head.drainDone = cycle + res.latency;
        drain_busy_until = head.drainDone;
    };

    while (have_pending || !store_buffer.empty()) {
        bool l1d_port_used = false;
        unsigned issued = 0;

        while (have_pending && issued < cp.dispatchWidth) {
            const vm::DynInst &dyn = pending;
            const isa::DecodedInst &inst = dyn.inst;
            OpClass cls = inst.cls;

            if (!pending_seen) {
                pending_ready_at = compute_fetch(dyn);
                pending_seen = true;
            }
            if (pending_ready_at > cycle)
                break; // front end has not delivered it yet

            // In-order stall-on-use: operands must be ready now.
            bool ready = true;
            for (unsigned i = 0; i < inst.numSrcs && ready; ++i)
                ready = reg_ready[inst.src[i]] <= cycle;
            if (!ready)
                break;

            // Structural hazard: a unit of the pool must be free now
            // (peek before reserving so a stalled retry does not book
            // the unit twice).
            if (!fus.canStartAt(cls, cycle))
                break;

            uint64_t done = cycle + fus.latencyOf(cls);

            if (cls == OpClass::Load) {
                uint64_t page = dyn.memAddr >> pageShift;
                unsigned lat = 0;
                bool blocked = false;

                // Store-buffer interactions first.
                bool forwarded = false;
                uint64_t overlap_wait = 0;
                for (const StoreEntry &st : store_buffer) {
                    if (dyn.memAddr + inst.memSize <= st.addr
                        || st.addr + st.size <= dyn.memAddr)
                        continue; // disjoint
                    if (dyn.memAddr >= st.addr
                        && dyn.memAddr + inst.memSize
                           <= st.addr + st.size) {
                        forwarded = true;
                    } else {
                        // Partial overlap: wait for the drain, replay.
                        uint64_t done_at = st.drainDone ? st.drainDone
                            : cycle + 1; // not draining yet: retry later
                        if (st.drainDone == 0)
                            blocked = true;
                        if (done_at > overlap_wait)
                            overlap_wait = done_at;
                    }
                }
                if (blocked)
                    break; // re-attempt next cycle

                if (forwarded && overlap_wait == 0) {
                    lat = 1; // store-buffer bypass
                } else if (hparams.zeroPageReads && !init_pages.count(page)
                           && !stored_pages.count(page)) {
                    // Read of an OS page never written: the zero page.
                    if (zero_pages.insert(page).second)
                        lat = cp.mem.l1d.latency + hparams.pageWalkPenalty;
                    else
                        lat = cp.mem.l1d.latency;
                } else {
                    // MSHR availability must be checked *before* the
                    // access mutates cache state; a blocked load retries
                    // the whole lookup next cycle.
                    bool will_miss = !mem.l1d().probe(
                        dyn.memAddr / mem.lineBytes());
                    size_t slot = 0;
                    for (size_t i = 1; i < mshr_busy.size(); ++i) {
                        if (mshr_busy[i] < mshr_busy[slot])
                            slot = i;
                    }
                    if (will_miss && mshr_busy[slot] > cycle) {
                        pending_ready_at = mshr_busy[slot];
                        break; // pipe blocks: all MSHRs in use
                    }
                    unsigned walk = 0;
                    if (touched_pages.insert(page).second)
                        walk = hparams.pageWalkPenalty;
                    cache::AccessResult res =
                        mem.access(dyn.pc, dyn.memAddr, false, false,
                                   cycle);
                    lat = res.latency + walk;
                    if (res.servedBy != cache::ServedBy::L1)
                        mshr_busy[slot] = cycle + lat;
                    if (overlap_wait > cycle)
                        lat += static_cast<unsigned>(overlap_wait - cycle)
                            + hparams.partialForwardPenalty;
                }
                done = cycle + lat;
                l1d_port_used = true;
                fus.reserve(cls, cycle);
            } else if (cls == OpClass::Store) {
                if (store_buffer.size() >= cp.storeBufferEntries)
                    break; // buffer full: stall issue
                fus.reserve(cls, cycle);
                store_buffer.push_back(
                    StoreEntry{dyn.memAddr, inst.memSize, cycle + 1, 0});
                stored_pages.insert(dyn.memAddr >> pageShift);
                touched_pages.insert(dyn.memAddr >> pageShift);
            } else if (inst.isBranch) {
                fus.reserve(cls, cycle);
                bool mispredict = bp.predict(dyn);
                if (mispredict) {
                    uint64_t redirect = done + cp.mispredictPenalty;
                    if (redirect > fetch_stall_until)
                        fetch_stall_until = redirect;
                    last_fetch_line = ~0ull;
                } else if (dyn.taken && cp.takenBranchBubble) {
                    uint64_t bubble = cycle + cp.takenBranchBubble;
                    if (bubble > fetch_stall_until)
                        fetch_stall_until = bubble;
                }
            } else {
                fus.reserve(cls, cycle);
            }

            if (inst.hasDst())
                reg_ready[inst.dst] = done;
            if (done > max_event)
                max_event = done;
            ++stats.instructions;
            ++issued;

            have_pending = source.next(pending);
            pending_seen = false;

            if (inst.isBranch)
                break; // at most one branch per issue group
        }

        drain_stores(!l1d_port_used);
        ++cycle;
    }

    uint64_t end = cycle > max_event ? cycle : max_event;
    if (drain_busy_until > end)
        end = drain_busy_until;
    stats.cycles = end;
    stats.branch = bp.stats();
    stats.l1iMisses = mem.l1i().stats().misses;
    stats.l1dAccesses = mem.l1d().stats().accesses;
    stats.l1dMisses = mem.l1d().stats().misses;
    stats.l2Misses = mem.l2().stats().misses;
    stats.dramReads = mem.dram().readCount();
    return stats;
}

} // namespace raceval::hw
