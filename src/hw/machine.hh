/**
 * @file
 * The "real hardware" stand-in (DESIGN.md section 2).
 *
 * The paper validates against a physical Firefly RK3399 board measured
 * with Linux perf. This reproduction replaces the board with detailed
 * cycle-by-cycle machine models whose configurations are *hidden* from
 * the tuner (hw::secretA53 / hw::secretA72) and which model effects the
 * abstract Sniper-like models do not (first-touch page cost, zero-page
 * reads of uninitialized memory, store-buffer port contention, timed
 * prefetch, measurement noise). That gives the validation flow both a
 * specification gap to close and an abstraction gap it cannot close --
 * the same two error sources the paper studies.
 */

#ifndef RACEVAL_HW_MACHINE_HH
#define RACEVAL_HW_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/params.hh"
#include "core/stats.hh"
#include "vm/trace.hh"

namespace raceval::hw
{

/** Hardware-model parameters: a core config plus hw-only effects. */
struct HwParams
{
    core::CoreParams core;

    /**
     * Reads of OS pages that were never written read the shared zero
     * page and hit in the cache after first touch (the paper's
     * uninitialized-array anecdote, §IV-B).
     */
    bool zeroPageReads = true;
    /** First touch of any data page costs a page-walk penalty. */
    unsigned pageWalkPenalty = 24;
    /** Loads partially overlapping an in-flight store stall+replay. */
    unsigned partialForwardPenalty = 6;
    /** Relative stddev of multiplicative measurement noise. */
    double noiseStdDev = 0.012;
    /** Base seed for per-benchmark deterministic noise. */
    uint64_t noiseSeed = 0x5eedf00d;
};

/** What Linux perf reports for one region run (paper §V). */
struct PerfCounters
{
    std::string benchmark;
    uint64_t instructions = 0;
    uint64_t cycles = 0;      //!< noise applied
    uint64_t branchMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;

    /** @return measured cycles-per-instruction. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles)
            / static_cast<double>(instructions) : 0.0;
    }
};

/**
 * A machine that can be "measured": the common interface of the two
 * detailed models. measure() adds deterministic per-benchmark noise so
 * that repeated measurements of the same benchmark agree (one stable
 * ground truth, like a quiesced board), while different benchmarks see
 * independent perturbations.
 */
class HwMachine
{
  public:
    explicit HwMachine(const HwParams &params) : hparams(params) {}
    virtual ~HwMachine() = default;

    /** Run the trace on the detailed model, no noise. */
    virtual core::CoreStats rawRun(vm::TraceSource &source) = 0;

    /** Run and report noisy perf counters. */
    PerfCounters measure(vm::TraceSource &source);

    /** @return active parameters. */
    const HwParams &params() const { return hparams; }

  protected:
    HwParams hparams;
};

/**
 * Build the right detailed model for a config.
 *
 * @param params hardware parameters.
 * @param out_of_order false builds the in-order (A53-class) machine.
 */
std::unique_ptr<HwMachine> makeMachine(const HwParams &params,
                                       bool out_of_order);

/** The hidden ground-truth Cortex-A53 stand-in configuration. */
HwParams secretA53();

/** The hidden ground-truth Cortex-A72 stand-in configuration. */
HwParams secretA72();

/**
 * The hidden ground-truth Cortex-M-class stand-in: single-issue
 * in-order, short pipeline, no L2 (TCM-like flat memory), tiny BTB,
 * no MMU (no page walks, no zero-page trick).
 */
HwParams secretCortexM();

} // namespace raceval::hw

#endif // RACEVAL_HW_MACHINE_HH
