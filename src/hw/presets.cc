/**
 * @file
 * The hidden ground-truth configurations of the two "boards".
 *
 * These play the role of the physical Cortex-A53 / Cortex-A72 silicon:
 * the validation flow may *measure* machines built from them but never
 * reads the parameter values. They deliberately differ from the
 * public-information models (core::publicInfoA53/A72) exactly on the
 * parameters ARM does not disclose -- branch predictor organization,
 * prefetchers, store buffering, hashing, penalties, window sizes --
 * which is the specification gap the racing tuner has to close.
 */

#include "hw/machine.hh"

#include "common/str.hh"

namespace raceval::hw
{

using namespace raceval::core;
using raceval::cache::HashKind;
using raceval::cache::PrefetchKind;
using raceval::cache::ReplKind;
using raceval::branch::PredictorKind;

HwParams
secretA53()
{
    HwParams hw;
    CoreParams &p = hw.core;
    p.name = "a53-secret";
    // Public facts stay as documented (dual-issue in-order, cache
    // geometry from the RK3399 datasheet).
    p.fetchWidth = 2;
    p.dispatchWidth = 2;
    p.commitWidth = 2;
    p.numIntAlu = 2;
    p.numIntMul = 1;
    p.numFpSimd = 1;
    p.numLoadPorts = 1;
    p.numStorePorts = 1;
    p.numBranch = 1;

    // Undisclosed truth the tuner must recover.
    p.mispredictPenalty = 8;
    p.takenBranchBubble = 1;
    p.storeBufferEntries = 6;
    p.forwarding = true;
    p.forwardLatency = 1;
    auto &lat = p.latency;
    lat[static_cast<size_t>(isa::OpClass::IntMul)] = 3;
    lat[static_cast<size_t>(isa::OpClass::IntDiv)] = 10;
    lat[static_cast<size_t>(isa::OpClass::FpAdd)] = 4;
    lat[static_cast<size_t>(isa::OpClass::FpMul)] = 4;
    lat[static_cast<size_t>(isa::OpClass::FpDiv)] = 11;
    lat[static_cast<size_t>(isa::OpClass::FpSqrt)] = 12;
    lat[static_cast<size_t>(isa::OpClass::FpCvt)] = 2;
    lat[static_cast<size_t>(isa::OpClass::FpMov)] = 1;
    lat[static_cast<size_t>(isa::OpClass::SimdAdd)] = 3;
    lat[static_cast<size_t>(isa::OpClass::SimdMul)] = 4;

    // Memory hierarchy: RK3399 'little' cluster.
    p.mem.l1i.name = "l1i";
    p.mem.l1i.sizeBytes = 32 * KiB;
    p.mem.l1i.assoc = 2;
    p.mem.l1i.latency = 1;
    p.mem.l1d.name = "l1d";
    p.mem.l1d.sizeBytes = 32 * KiB;
    p.mem.l1d.assoc = 4;
    p.mem.l1d.latency = 3;
    p.mem.l1d.mshrs = 3;
    p.mem.l1d.hash = HashKind::Xor;
    p.mem.l1d.repl = ReplKind::TreePLRU;
    p.mem.l1d.prefetch = PrefetchKind::Stride;
    p.mem.l1d.prefetchDegree = 2;
    p.mem.l1d.strideEntries = 32;
    p.mem.l2.name = "l2";
    p.mem.l2.sizeBytes = 512 * KiB;
    p.mem.l2.assoc = 16;
    p.mem.l2.latency = 13;
    p.mem.l2.mshrs = 8;
    p.mem.l2.prefetch = PrefetchKind::Stride;
    p.mem.l2.prefetchDegree = 2;
    p.mem.l2.serialTagData = true;
    p.mem.dram.latency = 150;
    p.mem.dram.cyclesPerLine = 6;

    // Branch unit: tournament with indirect support (the CS1 story).
    p.bp.kind = PredictorKind::Tournament;
    p.bp.tableBits = 12;
    p.bp.historyBits = 8;
    p.bp.btbBits = 9;
    p.bp.rasEntries = 8;
    p.bp.indirect = true;
    p.bp.indirectBits = 9;
    p.bp.indirectHistory = 8;

    // Hardware-only effects (abstraction gap).
    hw.zeroPageReads = true;
    hw.pageWalkPenalty = 22;
    hw.partialForwardPenalty = 6;
    hw.noiseStdDev = 0.012;
    return hw;
}

HwParams
secretA72()
{
    HwParams hw;
    CoreParams &p = hw.core;
    p.name = "a72-secret";
    // Public facts: 3-wide decode, out-of-order, 'big' cluster caches.
    p.fetchWidth = 3;
    p.dispatchWidth = 3;
    p.commitWidth = 3;
    p.numIntAlu = 2;
    p.numIntMul = 1;
    p.numFpSimd = 2;
    p.numLoadPorts = 1;
    p.numStorePorts = 1;
    p.numBranch = 1;

    // Undisclosed truth.
    p.mispredictPenalty = 14;
    p.takenBranchBubble = 0;
    p.robEntries = 128;
    p.iqEntries = 48;
    p.lqEntries = 32;
    p.sqEntries = 20;
    p.storeBufferEntries = 6; // unused by the OoO pipe, kept coherent
    p.forwarding = true;
    p.forwardLatency = 1;
    auto &lat = p.latency;
    lat[static_cast<size_t>(isa::OpClass::IntMul)] = 3;
    lat[static_cast<size_t>(isa::OpClass::IntDiv)] = 9;
    lat[static_cast<size_t>(isa::OpClass::FpAdd)] = 4;
    lat[static_cast<size_t>(isa::OpClass::FpMul)] = 4;
    lat[static_cast<size_t>(isa::OpClass::FpDiv)] = 10;
    lat[static_cast<size_t>(isa::OpClass::FpSqrt)] = 12;
    lat[static_cast<size_t>(isa::OpClass::FpCvt)] = 2;
    lat[static_cast<size_t>(isa::OpClass::FpMov)] = 1;
    lat[static_cast<size_t>(isa::OpClass::SimdAdd)] = 3;
    lat[static_cast<size_t>(isa::OpClass::SimdMul)] = 4;

    p.mem.l1i.name = "l1i";
    p.mem.l1i.sizeBytes = 48 * KiB;
    p.mem.l1i.assoc = 3;
    p.mem.l1i.latency = 1;
    p.mem.l1d.name = "l1d";
    p.mem.l1d.sizeBytes = 32 * KiB;
    p.mem.l1d.assoc = 4;
    p.mem.l1d.latency = 4;
    p.mem.l1d.mshrs = 6;
    p.mem.l1d.hash = HashKind::Xor;
    p.mem.l1d.repl = ReplKind::LRU;
    p.mem.l1d.prefetch = PrefetchKind::Stride;
    p.mem.l1d.prefetchDegree = 4;
    p.mem.l1d.strideEntries = 64;
    p.mem.l2.name = "l2";
    p.mem.l2.sizeBytes = 1 * MiB;
    p.mem.l2.assoc = 16;
    p.mem.l2.latency = 14;
    p.mem.l2.mshrs = 10;
    p.mem.l2.prefetch = PrefetchKind::Ghb;
    p.mem.l2.prefetchDegree = 2;
    p.mem.l2.ghbEntries = 256;
    p.mem.dram.latency = 160;
    p.mem.dram.cyclesPerLine = 4;

    p.bp.kind = PredictorKind::Tournament;
    p.bp.tableBits = 13;
    p.bp.historyBits = 10;
    p.bp.btbBits = 11;
    p.bp.rasEntries = 16;
    p.bp.indirect = true;
    p.bp.indirectBits = 10;
    p.bp.indirectHistory = 8;

    hw.zeroPageReads = true;
    hw.pageWalkPenalty = 26;
    hw.partialForwardPenalty = 5;
    hw.noiseStdDev = 0.015;
    return hw;
}

HwParams
secretCortexM()
{
    HwParams hw;
    CoreParams &p = hw.core;
    p.name = "cortex-m-secret";
    // Datasheet facts: single-issue in-order, short pipeline, small
    // L1s backed by flat TCM-like memory (no L2, no MMU).
    p.fetchWidth = 1;
    p.dispatchWidth = 1;
    p.commitWidth = 1;
    p.numIntAlu = 1;
    p.numIntMul = 1;
    p.numFpSimd = 1;
    p.numLoadPorts = 1;
    p.numStorePorts = 1;
    p.numBranch = 1;

    // Undisclosed truth the tuner must recover: a 3-stage-class flush
    // penalty, a tiny store buffer, fast iterative divide.
    p.mispredictPenalty = 3;
    p.takenBranchBubble = 1;
    p.storeBufferEntries = 2;
    p.forwarding = true;
    p.forwardLatency = 1;
    auto &lat = p.latency;
    lat[static_cast<size_t>(isa::OpClass::IntMul)] = 2;
    lat[static_cast<size_t>(isa::OpClass::IntDiv)] = 6;
    lat[static_cast<size_t>(isa::OpClass::FpAdd)] = 3;
    lat[static_cast<size_t>(isa::OpClass::FpMul)] = 3;
    lat[static_cast<size_t>(isa::OpClass::FpDiv)] = 14;
    lat[static_cast<size_t>(isa::OpClass::FpSqrt)] = 14;
    lat[static_cast<size_t>(isa::OpClass::FpCvt)] = 2;
    lat[static_cast<size_t>(isa::OpClass::FpMov)] = 1;
    lat[static_cast<size_t>(isa::OpClass::SimdAdd)] = 3;
    lat[static_cast<size_t>(isa::OpClass::SimdMul)] = 4;

    // Memory: small L1s over flat single-cycle-class SRAM. 32-byte
    // lines (M7-style), no L2 level at all.
    p.mem.l1i.name = "l1i";
    p.mem.l1i.sizeBytes = 16 * KiB;
    p.mem.l1i.assoc = 2;
    p.mem.l1i.lineBytes = 32;
    p.mem.l1i.latency = 1;
    p.mem.l1d.name = "l1d";
    p.mem.l1d.sizeBytes = 16 * KiB;
    p.mem.l1d.assoc = 4;
    p.mem.l1d.lineBytes = 32;
    p.mem.l1d.latency = 2;
    p.mem.l1d.mshrs = 2;
    p.mem.l1d.repl = ReplKind::Random; // M-class pseudo-random
    p.mem.l2Present = false;
    p.mem.dram.latency = 9;       // wait-stated SRAM, not DDR
    p.mem.dram.cyclesPerLine = 2;

    // Branch unit: small bimodal with a tiny BTB, no indirect
    // predictor, shallow RAS.
    p.bp.kind = PredictorKind::Bimodal;
    p.bp.tableBits = 8;
    p.bp.historyBits = 4;
    p.bp.btbBits = 5;
    p.bp.rasEntries = 4;
    p.bp.indirect = false;

    // Hardware-only effects: no MMU, so no page walks and no OS zero
    // page; a quiesced microcontroller measures very cleanly.
    hw.zeroPageReads = false;
    hw.pageWalkPenalty = 0;
    hw.partialForwardPenalty = 4;
    hw.noiseStdDev = 0.006;
    return hw;
}

} // namespace raceval::hw
