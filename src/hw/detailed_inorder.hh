/**
 * @file
 * Detailed cycle-by-cycle in-order machine (the Cortex-A53 stand-in).
 *
 * Unlike the abstract core::InOrderCore cycle-accounting model, this
 * model advances one cycle at a time and arbitrates every shared
 * resource explicitly: the dual-issue slots, the single L1D port that
 * loads and store-buffer drains fight over, MSHRs that block issue
 * entirely when exhausted (head-of-line blocking, as a real in-order
 * pipe does), first-touch page walks, zero-page reads and
 * partial-store-overlap replays. These extra effects are the
 * *abstraction gap* the validation methodology cannot tune away.
 */

#ifndef RACEVAL_HW_DETAILED_INORDER_HH
#define RACEVAL_HW_DETAILED_INORDER_HH

#include "hw/machine.hh"

namespace raceval::hw
{

/** Cycle-by-cycle dual-issue in-order machine. */
class DetailedInOrder : public HwMachine
{
  public:
    explicit DetailedInOrder(const HwParams &params)
        : HwMachine(params)
    {
        hparams.core.validate();
    }

    core::CoreStats rawRun(vm::TraceSource &source) override;
};

} // namespace raceval::hw

#endif // RACEVAL_HW_DETAILED_INORDER_HH
