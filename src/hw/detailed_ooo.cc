#include "hw/detailed_ooo.hh"

#include <deque>
#include <unordered_set>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "core/contention.hh"

namespace raceval::hw
{

using isa::OpClass;

namespace
{

constexpr uint64_t pageShift = 12;
constexpr uint64_t invalidSeq = ~0ull;

/** One in-flight instruction (ROB entry). */
struct RobEntry
{
    uint64_t seq = invalidSeq;
    OpClass cls = OpClass::Nop;
    uint8_t dst = isa::noReg;
    uint8_t src[3] = { isa::noReg, isa::noReg, isa::noReg };
    uint8_t numSrcs = 0;
    /** Producer sequence numbers for each source (invalidSeq = none). */
    uint64_t producer[3] = { invalidSeq, invalidSeq, invalidSeq };
    uint64_t memAddr = 0;
    unsigned memSize = 0;
    uint64_t pc = 0;
    bool issued = false;
    uint64_t completeAt = 0;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    bool mispredict = false;
    bool taken = false;
    uint64_t nextPc = 0;
};

/** A retired store draining to the L1D. */
struct DrainEntry
{
    uint64_t addr = 0;
    unsigned size = 0;
    uint64_t pc = 0;
    uint64_t seq = 0;
    uint64_t drainDone = 0; //!< 0 while waiting for the port
};

} // namespace

core::CoreStats
DetailedOoO::rawRun(vm::TraceSource &source)
{
    const core::CoreParams &cp = hparams.core;

    cache::HierarchyParams hier = cp.mem;
    hier.timedPrefetch = true;
    hier.prefetchConsumesBandwidth = true;
    cache::MemoryHierarchy mem(hier, /*rng_seed=*/4243);
    branch::BranchUnit bp(cp.bp);
    core::ContentionModel fus(cp);

    source.reset();

    // --- machine state ----------------------------------------------------
    uint64_t cycle = 0;
    uint64_t fetch_stall_until = 0;
    uint64_t last_fetch_line = ~0ull;
    std::vector<RobEntry> rob(cp.robEntries);
    uint64_t rob_head = 0; //!< oldest live seq
    uint64_t rob_tail = 0; //!< next seq to allocate
    size_t iq_count = 0;
    size_t lq_count = 0;
    size_t sq_count = 0;
    /** Latest writer (seq) of each architectural register. */
    std::vector<uint64_t> last_writer(isa::numIntRegs + isa::numFpRegs,
                                      invalidSeq);
    std::vector<uint64_t> mshr_busy(cp.mem.l1d.mshrs, 0);
    std::deque<DrainEntry> drain_queue;
    uint64_t drain_busy_until = 0;
    std::unordered_set<uint64_t> touched_pages;
    std::unordered_set<uint64_t> stored_pages;
    std::unordered_set<uint64_t> zero_pages;
    std::unordered_set<uint64_t> init_pages;

    if (const isa::Program *prog = source.program()) {
        for (const auto &segment : prog->data) {
            uint64_t first = segment.base >> pageShift;
            uint64_t last = (segment.base + segment.bytes.size())
                >> pageShift;
            for (uint64_t page = first; page <= last; ++page)
                init_pages.insert(page);
        }
    }

    core::CoreStats stats;
    vm::DynInst pending;
    bool have_pending = source.next(pending);
    uint64_t pending_ready_at = 0;
    bool pending_seen = false;
    /** Dispatch is frozen behind this unresolved mispredicted branch. */
    uint64_t mispredict_block = invalidSeq;

    auto slot = [&rob](uint64_t seq) -> RobEntry & {
        return rob[seq % rob.size()];
    };

    auto compute_fetch = [&](const vm::DynInst &dyn) {
        uint64_t line = dyn.pc / mem.lineBytes();
        uint64_t ready = fetch_stall_until;
        if (line != last_fetch_line) {
            last_fetch_line = line;
            cache::AccessResult fetch =
                mem.access(dyn.pc, dyn.pc, false, true, cycle);
            if (fetch.servedBy != cache::ServedBy::L1) {
                uint64_t bubble = fetch.latency - cp.mem.l1i.latency;
                if (cycle + bubble > ready)
                    ready = cycle + bubble;
            }
        }
        return ready;
    };

    while (have_pending || rob_head != rob_tail || !drain_queue.empty()) {
        bool l1d_port_used = false;

        // --- issue: wakeup/select over the issue queue, oldest first ---
        {
            unsigned issued_loads = 0;
            for (uint64_t seq = rob_head; seq < rob_tail; ++seq) {
                if (iq_count == 0)
                    break;
                RobEntry &e = slot(seq);
                if (e.issued)
                    continue;

                bool ready = true;
                for (unsigned i = 0; i < e.numSrcs && ready; ++i) {
                    uint64_t p = e.producer[i];
                    if (p == invalidSeq)
                        continue;
                    const RobEntry &prod = slot(p);
                    if (prod.seq != p)
                        continue; // producer already retired
                    ready = prod.issued && prod.completeAt <= cycle;
                }
                if (!ready)
                    continue;
                if (!fus.canStartAt(e.cls, cycle))
                    continue; // all units of the pool busy

                if (e.isLoad) {
                    // One L1D port shared with store drains.
                    if (issued_loads >= cp.numLoadPorts)
                        continue;
                    uint64_t page = e.memAddr >> pageShift;
                    unsigned lat = 0;

                    // Search older un-drained stores for forwarding.
                    bool forwarded = false;
                    bool blocked = false;
                    uint64_t overlap_wait = 0;
                    for (uint64_t s = rob_head; s < seq; ++s) {
                        const RobEntry &st = slot(s);
                        if (st.seq != s || !st.isStore)
                            continue;
                        if (e.memAddr + e.memSize <= st.memAddr
                            || st.memAddr + st.memSize <= e.memAddr)
                            continue;
                        if (!st.issued) {
                            blocked = true; // address unknown yet
                            break;
                        }
                        if (e.memAddr >= st.memAddr
                            && e.memAddr + e.memSize
                               <= st.memAddr + st.memSize)
                            forwarded = true;
                        else
                            blocked = true; // partial overlap in ROB
                    }
                    if (!blocked) {
                        for (const DrainEntry &d : drain_queue) {
                            if (e.memAddr + e.memSize <= d.addr
                                || d.addr + d.size <= e.memAddr)
                                continue;
                            if (e.memAddr >= d.addr
                                && e.memAddr + e.memSize
                                   <= d.addr + d.size) {
                                forwarded = true;
                            } else {
                                uint64_t at = d.drainDone
                                    ? d.drainDone : cycle + 1;
                                if (d.drainDone == 0)
                                    blocked = true;
                                if (at > overlap_wait)
                                    overlap_wait = at;
                            }
                        }
                    }
                    if (blocked)
                        continue; // retry next cycle

                    if (forwarded && overlap_wait == 0) {
                        lat = 1;
                    } else if (hparams.zeroPageReads
                               && !init_pages.count(page)
                               && !stored_pages.count(page)) {
                        if (zero_pages.insert(page).second)
                            lat = cp.mem.l1d.latency
                                + hparams.pageWalkPenalty;
                        else
                            lat = cp.mem.l1d.latency;
                    } else {
                        bool will_miss = !mem.l1d().probe(
                            e.memAddr / mem.lineBytes());
                        size_t mshr = 0;
                        for (size_t i = 1; i < mshr_busy.size(); ++i) {
                            if (mshr_busy[i] < mshr_busy[mshr])
                                mshr = i;
                        }
                        if (will_miss && mshr_busy[mshr] > cycle)
                            continue; // no MSHR: stay in the queue
                        unsigned walk = 0;
                        if (touched_pages.insert(page).second)
                            walk = hparams.pageWalkPenalty;
                        cache::AccessResult res = mem.access(
                            e.pc, e.memAddr, false, false, cycle);
                        lat = res.latency + walk;
                        if (res.servedBy != cache::ServedBy::L1)
                            mshr_busy[mshr] = cycle + lat;
                        if (overlap_wait > cycle)
                            lat += static_cast<unsigned>(
                                overlap_wait - cycle)
                                + hparams.partialForwardPenalty;
                    }
                    e.completeAt = cycle + lat;
                    ++issued_loads;
                    l1d_port_used = true;
                    fus.reserve(e.cls, cycle);
                } else {
                    fus.reserve(e.cls, cycle);
                    e.completeAt = cycle + fus.latencyOf(e.cls);
                    if (e.isBranch && e.mispredict) {
                        uint64_t redirect =
                            e.completeAt + cp.mispredictPenalty;
                        if (redirect > fetch_stall_until)
                            fetch_stall_until = redirect;
                        last_fetch_line = ~0ull;
                        if (mispredict_block == e.seq)
                            mispredict_block = invalidSeq;
                    }
                }
                e.issued = true;
                --iq_count;
            }
        }

        // --- retire: oldest done entries, commitWidth per cycle --------
        {
            unsigned retired = 0;
            while (rob_head != rob_tail && retired < cp.commitWidth) {
                RobEntry &e = slot(rob_head);
                if (!e.issued || e.completeAt > cycle)
                    break;
                if (e.isStore) {
                    drain_queue.push_back(DrainEntry{
                        e.memAddr, e.memSize, e.pc, e.seq, 0});
                    stored_pages.insert(e.memAddr >> pageShift);
                    touched_pages.insert(e.memAddr >> pageShift);
                    // sq_count released when the drain completes.
                } else if (e.isLoad) {
                    --lq_count;
                }
                e.seq = invalidSeq;
                ++rob_head;
                ++retired;
            }
        }

        // --- store drain through the shared L1D port -------------------
        while (!drain_queue.empty() && drain_queue.front().drainDone != 0
               && drain_queue.front().drainDone <= cycle) {
            drain_queue.pop_front();
            RV_ASSERT(sq_count > 0, "sq underflow");
            --sq_count;
        }
        if (!l1d_port_used && !drain_queue.empty()
            && drain_queue.front().drainDone == 0
            && drain_busy_until <= cycle) {
            DrainEntry &head = drain_queue.front();
            cache::AccessResult res =
                mem.access(head.pc, head.addr, true, false, cycle);
            head.drainDone = cycle + res.latency;
            drain_busy_until = head.drainDone;
        }

        // --- dispatch: in-order, gated by window resources --------------
        {
            unsigned dispatched = 0;
            while (have_pending && dispatched < cp.dispatchWidth) {
                if (mispredict_block != invalidSeq)
                    break; // waiting for a mispredicted branch to resolve
                if (fetch_stall_until > cycle)
                    break; // front end still refilling after a redirect
                if (rob_tail - rob_head >= rob.size())
                    break; // ROB full
                if (iq_count >= cp.iqEntries)
                    break;
                const isa::DecodedInst &inst = pending.inst;
                bool is_load = inst.cls == OpClass::Load;
                bool is_store = inst.cls == OpClass::Store;
                if (is_load && lq_count >= cp.lqEntries)
                    break;
                if (is_store && sq_count >= cp.sqEntries)
                    break;
                if (!pending_seen) {
                    pending_ready_at = compute_fetch(pending);
                    pending_seen = true;
                }
                if (pending_ready_at > cycle)
                    break;

                RobEntry &e = slot(rob_tail);
                e = RobEntry{};
                e.seq = rob_tail;
                e.cls = inst.cls;
                e.dst = inst.dst;
                e.numSrcs = inst.numSrcs;
                for (unsigned i = 0; i < inst.numSrcs; ++i) {
                    e.src[i] = inst.src[i];
                    e.producer[i] = last_writer[inst.src[i]];
                }
                e.memAddr = pending.memAddr;
                e.memSize = inst.memSize;
                e.pc = pending.pc;
                e.isLoad = is_load;
                e.isStore = is_store;
                e.isBranch = inst.isBranch;
                e.taken = pending.taken;
                e.nextPc = pending.nextPc;
                if (inst.isBranch)
                    e.mispredict = bp.predict(pending);
                if (inst.hasDst())
                    last_writer[inst.dst] = rob_tail;
                ++rob_tail;
                ++iq_count;
                if (is_load)
                    ++lq_count;
                if (is_store)
                    ++sq_count;
                ++dispatched;
                ++stats.instructions;

                have_pending = source.next(pending);
                pending_seen = false;

                if (e.isBranch && e.mispredict) {
                    // Younger instructions are wrong-path until this
                    // branch resolves; freeze dispatch behind it.
                    mispredict_block = e.seq;
                    break;
                }
            }
        }

        ++cycle;
        RV_ASSERT(cycle < (1ull << 42), "detailed ooo model runaway");
    }

    stats.cycles = cycle > drain_busy_until ? cycle : drain_busy_until;
    stats.branch = bp.stats();
    stats.l1iMisses = mem.l1i().stats().misses;
    stats.l1dAccesses = mem.l1d().stats().accesses;
    stats.l1dMisses = mem.l1d().stats().misses;
    stats.l2Misses = mem.l2().stats().misses;
    stats.dramReads = mem.dram().readCount();
    return stats;
}

} // namespace raceval::hw
