/**
 * @file
 * The iterated-racing tuner is a general black-box configurator (the
 * paper: "our methodology can be used to tune and validate any
 * simulator"). Here it tunes a synthetic 6-parameter objective with a
 * known optimum, so you can watch it converge.
 */

#include <cmath>
#include <cstdio>
#include <string_view>

#include "tuner/race.hh"

using namespace raceval;

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            smoke = true;
        } else {
            std::printf("usage: %s [--smoke]\nTune a synthetic "
                        "6-parameter objective with iterated racing.\n",
                        argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    tuner::ParameterSpace space;
    space.addOrdinal("alpha", {1, 2, 4, 8, 16, 32});
    space.addOrdinal("beta", {10, 20, 30, 40, 50});
    space.addCategorical("gamma", {"red", "green", "blue"});
    space.addFlag("delta");
    space.addOrdinal("epsilon", {0, 1, 2, 3, 4, 5, 6, 7});
    space.addFlag("zeta");

    // Optimum: alpha=8, beta=30, gamma=green, delta=on, epsilon=5,
    // zeta=off. Instances perturb the weights slightly.
    auto cost = [&space](const tuner::Configuration &c,
                         size_t instance) {
        double inst_w = 1.0 + 0.1 * static_cast<double>(instance % 7);
        double err = 0.0;
        err += std::abs(
            std::log2(double(space.ordinalValue(c, "alpha"))) - 3.0);
        err += std::abs(double(space.ordinalValue(c, "beta")) - 30.0)
            / 10.0;
        err += space.categoricalChoice(c, "gamma") == 1 ? 0.0 : 1.0;
        err += space.flagValue(c, "delta") ? 0.0 : 1.5;
        err += std::abs(double(space.ordinalValue(c, "epsilon")) - 5.0)
            * 0.3;
        err += space.flagValue(c, "zeta") ? 0.8 : 0.0;
        return err * inst_w;
    };

    tuner::RacerOptions opts;
    opts.maxExperiments = smoke ? 240 : 1200;
    opts.verbose = true;
    tuner::IteratedRacer racer(space, cost, /*num_instances=*/12, opts);
    tuner::RaceResult result = racer.run();

    std::printf("\nbest configuration: %s\n",
                space.describe(result.best).c_str());
    std::printf("mean cost %.4f after %llu experiments "
                "(optimum cost is 0 at weight 1)\n",
                result.bestMeanCost,
                static_cast<unsigned long long>(
                    result.experimentsUsed));
    return 0;
}
