/**
 * @file
 * The tuner is a general black-box configurator (the paper: "our
 * methodology can be used to tune and validate any simulator") and,
 * since the SearchStrategy registry, an extensible one: this example
 * registers its own strategy -- a greedy coordinate descent -- next
 * to the built-in ones (irace, random, halving), then runs EVERY
 * registered strategy on a synthetic 6-parameter objective with a
 * known optimum at the same experiment budget, so you can watch them
 * converge side by side.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "stats/descriptive.hh"
#include "tuner/charged_set.hh"
#include "tuner/strategy.hh"

using namespace raceval;

namespace
{

/**
 * A user-defined strategy: greedy coordinate descent from the initial
 * candidate (or all-zeros). Each round tries every one-step neighbour
 * of the incumbent -- one whole (neighbours x instances) batch
 * through the CostEvaluator, exactly like a racing step -- and moves
 * to the best improvement until the budget runs out or a local
 * optimum is reached. Budget accounting follows the strategy
 * contract: only (config, instance) pairs new to this search are
 * charged, so a warm cache speeds it up without changing its path.
 */
class CoordinateDescentStrategy : public tuner::SearchStrategy
{
  public:
    CoordinateDescentStrategy(const tuner::ParameterSpace &space,
                              tuner::CostEvaluator &evaluator,
                              size_t num_instances,
                              const tuner::RacerOptions &options)
        : space(space), evaluator(evaluator),
          numInstances(num_instances),
          // Probes score over the full instance suite, unless the
          // budget cannot even pay for one full probe -- then shrink
          // the probe subset so the very first evaluation already
          // respects maxExperiments.
          probeInstances(static_cast<size_t>(std::min<uint64_t>(
              options.maxExperiments, num_instances))),
          opts(options), incumbent(space.size())
    {
    }

    void
    addInitialCandidate(const tuner::Configuration &config) override
    {
        incumbent = config;
    }

    tuner::RaceResult
    run() override
    {
        double best_cost = meanCost(incumbent);
        unsigned rounds = 0;
        bool improved = true;
        // A probe costs at most probeInstances fresh pairs; stop while
        // the budget still covers a whole one so the strategy can
        // never overshoot maxExperiments.
        auto probe_fits = [this] {
            return experimentsUsed + probeInstances
                <= opts.maxExperiments;
        };
        while (improved && probe_fits()) {
            improved = false;
            ++rounds;
            for (size_t i = 0; i < space.size(); ++i) {
                size_t card = space.at(i).cardinality();
                for (size_t step = 0; step < card; ++step) {
                    if (step == incumbent[i])
                        continue;
                    if (!probe_fits())
                        break;
                    tuner::Configuration next = incumbent;
                    next[i] = static_cast<uint16_t>(step);
                    double cost = meanCost(next);
                    if (cost < best_cost) {
                        best_cost = cost;
                        incumbent = next;
                        improved = true;
                    }
                }
            }
        }

        tuner::RaceResult result;
        result.best = incumbent;
        std::vector<tuner::EvalPair> pairs;
        for (size_t t = 0; t < numInstances; ++t)
            pairs.emplace_back(incumbent, t);
        result.bestCosts = evaluator.evaluateMany(pairs);
        result.bestMeanCost = stats::mean(result.bestCosts);
        result.experimentsUsed = experimentsUsed;
        result.iterations = rounds;
        result.elites.emplace_back(incumbent, result.bestMeanCost);
        return result;
    }

  private:
    double
    meanCost(const tuner::Configuration &config)
    {
        std::vector<tuner::EvalPair> pairs;
        pairs.reserve(probeInstances);
        for (size_t t = 0; t < probeInstances; ++t)
            pairs.emplace_back(config, t);
        std::vector<double> costs = evaluator.evaluateMany(pairs);
        for (size_t t = 0; t < probeInstances; ++t) {
            if (charged.insert(tuner::ChargedKey{config, t}).second)
                ++experimentsUsed;
        }
        return stats::mean(costs);
    }

    const tuner::ParameterSpace &space;
    tuner::CostEvaluator &evaluator;
    size_t numInstances;
    size_t probeInstances;
    tuner::RacerOptions opts;
    tuner::Configuration incumbent;
    tuner::ChargedSet charged;
    uint64_t experimentsUsed = 0;
};

std::unique_ptr<tuner::SearchStrategy>
makeCoordinateDescent(const tuner::ParameterSpace &space,
                      tuner::CostEvaluator &evaluator,
                      size_t num_instances,
                      const tuner::RacerOptions &options)
{
    return std::make_unique<CoordinateDescentStrategy>(
        space, evaluator, num_instances, options);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            smoke = true;
        } else {
            std::printf("usage: %s [--smoke]\nTune a synthetic "
                        "6-parameter objective with every registered "
                        "search strategy (including one this example "
                        "registers itself).\n", argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    // Registering a strategy makes it selectable everywhere a name
    // is: here, but equally in ValidationFlow::FlowOptions::strategy,
    // CampaignTask::strategy and the drivers' --strategy flag. The
    // salt must be unique and stable (it keys campaign checkpoints).
    tuner::SearchStrategyRegistry::instance().registerStrategy(
        {"coordinate",
         "greedy coordinate descent (this example's own strategy)",
         0x636f6f7264ull, &makeCoordinateDescent});

    tuner::ParameterSpace space;
    space.addOrdinal("alpha", {1, 2, 4, 8, 16, 32});
    space.addOrdinal("beta", {10, 20, 30, 40, 50});
    space.addCategorical("gamma", {"red", "green", "blue"});
    space.addFlag("delta");
    space.addOrdinal("epsilon", {0, 1, 2, 3, 4, 5, 6, 7});
    space.addFlag("zeta");

    // Optimum: alpha=8, beta=30, gamma=green, delta=on, epsilon=5,
    // zeta=off. Instances perturb the weights slightly.
    auto cost = [&space](const tuner::Configuration &c,
                         size_t instance) {
        double inst_w = 1.0 + 0.1 * static_cast<double>(instance % 7);
        double err = 0.0;
        err += std::abs(
            std::log2(double(space.ordinalValue(c, "alpha"))) - 3.0);
        err += std::abs(double(space.ordinalValue(c, "beta")) - 30.0)
            / 10.0;
        err += space.categoricalChoice(c, "gamma") == 1 ? 0.0 : 1.0;
        err += space.flagValue(c, "delta") ? 0.0 : 1.5;
        err += std::abs(double(space.ordinalValue(c, "epsilon")) - 5.0)
            * 0.3;
        err += space.flagValue(c, "zeta") ? 0.8 : 0.0;
        return err * inst_w;
    };

    tuner::RacerOptions opts;
    opts.maxExperiments = smoke ? 240 : 1200;
    const size_t num_instances = 12;

    // A far-from-optimal but legal starting point, handed to every
    // strategy (the flow does the same with the public-info model).
    tuner::Configuration start(space.size());

    std::printf("%-12s %12s %11s  %s\n", "strategy", "experiments",
                "mean cost", "best configuration");
    for (const auto &info :
         tuner::SearchStrategyRegistry::instance().all()) {
        // Each strategy gets its own cold evaluator so the printed
        // costs are comparable apples-to-apples searches.
        tuner::SimpleCostEvaluator evaluator(cost, /*threads=*/1);
        auto strategy = info.make(space, evaluator, num_instances,
                                  opts);
        strategy->addInitialCandidate(start);
        tuner::RaceResult result = strategy->run();
        std::printf("%-12s %12llu %11.4f  %s\n", info.name,
                    static_cast<unsigned long long>(
                        result.experimentsUsed),
                    result.bestMeanCost,
                    space.describe(result.best).c_str());
    }
    std::printf("\n(optimum cost is 0 at weight 1; every strategy "
                "spent the same %llu-experiment budget)\n",
                static_cast<unsigned long long>(opts.maxExperiments));
    return 0;
}
