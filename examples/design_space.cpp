/**
 * @file
 * Using the (validated) simulator the way an architect would: sweep a
 * design parameter and look at its performance effect. Here: L1D size
 * and MSHR count on two memory-bound workloads.
 */

#include <cstdio>
#include <string_view>

#include "common/str.hh"
#include "core/inorder.hh"
#include "ubench/ubench.hh"
#include "vm/functional.hh"

using namespace raceval;

int
main(int argc, char **argv)
{
    // --smoke (ctest smoke suite) is accepted but changes nothing:
    // the sweep already finishes in well under a second.
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) != "--smoke") {
            std::printf("usage: %s [--smoke]\nSweep L1D size and MSHR "
                        "count on two memory-bound workloads.\n",
                        argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    core::CoreParams base = core::publicInfoA53();
    std::printf("%-10s %-8s %10s %10s\n", "l1d size", "mshrs",
                "ML2 CPI", "MIM CPI");

    isa::Program ml2 = ubench::build(*ubench::find("ML2"));
    isa::Program mim = ubench::build(*ubench::find("MIM"));

    for (uint64_t kib : {16, 32, 64}) {
        for (unsigned mshrs : {1u, 2u, 4u, 8u}) {
            core::CoreParams p = base;
            p.mem.l1d.sizeBytes = kib * KiB;
            p.mem.l1d.mshrs = mshrs;
            core::InOrderCore sim(p);
            vm::FunctionalCore src_ml2(ml2);
            vm::FunctionalCore src_mim(mim);
            double cpi_ml2 = sim.run(src_ml2).cpi();
            double cpi_mim = sim.run(src_mim).cpi();
            std::printf("%6lluKiB %8u %10.3f %10.3f\n",
                        static_cast<unsigned long long>(kib), mshrs,
                        cpi_ml2, cpi_mim);
        }
    }
    std::printf("\nexpected: larger L1 helps ML2 (capacity misses); "
                "more MSHRs help MIM (miss-level parallelism).\n");
    return 0;
}
