/**
 * @file
 * End-to-end validation (Fig. 1 of the paper): build the
 * public-information Cortex-A53 model, probe cache latencies on the
 * "board", race the undisclosed parameters with irace, and report the
 * error before and after. A small budget keeps this example quick;
 * raise it (or set RACEVAL_BUDGET in the benches) for tighter fits.
 */

#include <cstdio>
#include <string_view>

#include "common/log.hh"
#include "validate/flow.hh"

using namespace raceval;

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") {
            smoke = true;
        } else {
            std::printf("usage: %s [--smoke]\nRun the full six-step "
                        "validation flow against the A53 board.\n",
                        argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    validate::FlowOptions opts;
    opts.budget = smoke ? 300 : 2000; // paper: 10K-100K trials
    opts.verbose = true;
    validate::ValidationFlow flow(/*out_of_order=*/false, opts);
    validate::FlowReport report = flow.run();

    std::printf("\nprobed latencies: l1d=%u cycles, l2=%u cycles\n",
                report.latencies.l1d, report.latencies.l2);
    std::printf("untuned avg ubench CPI error: %.1f%%\n",
                100.0 * report.untunedUbenchAvg);
    std::printf("tuned   avg ubench CPI error: %.1f%%\n",
                100.0 * report.tunedUbenchAvg);
    std::printf("experiments used: %llu\n",
                static_cast<unsigned long long>(
                    report.race.experimentsUsed));
    std::printf("\ntuned configuration:\n  %s\n",
                flow.paramSpace().space()
                    .describe(report.race.best).c_str());
    std::printf("\n%s\n", report.engineStats.summary().c_str());
    return 0;
}
