/**
 * @file
 * Quickstart: assemble a tiny AArch64-lite program, execute it
 * functionally, then time it on the abstract in-order (Cortex-A53
 * class) model and print CPI and component statistics.
 */

#include <cstdio>
#include <string_view>

#include "core/inorder.hh"
#include "core/params.hh"
#include "isa/assembler.hh"
#include "vm/functional.hh"

using namespace raceval;

int
main(int argc, char **argv)
{
    // --smoke (ctest smoke suite) is accepted but changes nothing:
    // the whole example finishes in well under a second.
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) != "--smoke") {
            std::printf("usage: %s [--smoke]\nAssemble, execute and "
                        "time a tiny program on the A53 model.\n",
                        argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    // 1. Write a program: sum an array of 1024 dwords.
    isa::Assembler a("quickstart");
    a.loadImm(1, 0x100000);  // x1 = array base
    a.loadImm(2, 1024);      // x2 = elements
    a.movz(3, 0);            // x3 = sum
    a.label("loop");
    a.ldr(4, 1, 0, 8);
    a.add(3, 3, 4);
    a.addi(1, 1, 8);
    a.subi(2, 2, 1);
    a.cbnz(2, "loop");
    a.halt();
    isa::Program prog = a.finish();
    prog.addZeroedDwords(0x100000, 1024); // initialized data

    // 2. Execute functionally (this is the trace front-end).
    vm::FunctionalCore source(prog);
    std::printf("dynamic instructions: %llu\n",
                static_cast<unsigned long long>([&] {
                    uint64_t n = source.run();
                    source.reset();
                    return n;
                }()));

    // 3. Time it on the Cortex-A53-class in-order model.
    core::CoreParams params = core::publicInfoA53();
    core::InOrderCore sim(params);
    core::CoreStats stats = sim.run(source);

    std::printf("cycles:       %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("CPI:          %.3f\n", stats.cpi());
    std::printf("branch MPKI:  %.2f\n",
                1000.0 * stats.branch.rate()
                    * static_cast<double>(stats.branch.branches)
                    / static_cast<double>(stats.instructions));
    std::printf("L1D MPKI:     %.2f\n", stats.l1dMpki());
    return 0;
}
