/**
 * @file
 * Record-once / replay-many (the paper's SIFT workflow): record a
 * benchmark's dynamic stream to a trace file with the functional
 * front-end ("on the ARM board"), then replay it into two different
 * core configurations ("on the x86 simulation servers") without
 * re-executing the program. The second half shows the same discipline
 * through the evaluation engine: an EvalEngine records each instance
 * once and serves every (model, instance) request as a cached replay.
 */

#include <cstdio>
#include <string_view>

#include "core/inorder.hh"
#include "engine/engine.hh"
#include "sift/sift.hh"
#include "ubench/ubench.hh"
#include "vm/functional.hh"

using namespace raceval;

int
main(int argc, char **argv)
{
    // --smoke (ctest smoke suite) is accepted but changes nothing:
    // record + both replays finish in well under a second.
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) != "--smoke") {
            std::printf("usage: %s [--smoke]\nRecord a SIFT trace "
                        "once, replay it into two core configs.\n",
                        argv[0]);
            return std::string_view(argv[i]) == "--help" ||
                   std::string_view(argv[i]) == "-h" ? 0 : 2;
        }
    }

    isa::Program prog = ubench::build(*ubench::find("CCh"));
    vm::FunctionalCore recorder(prog);
    const char *path = "cch.sift";
    sift::writeTrace(path, prog, recorder);
    std::printf("recorded %s\n", path);

    sift::SiftReader replay(path);
    std::printf("trace: %llu instructions, program '%s'\n",
                static_cast<unsigned long long>(replay.instCount()),
                replay.name().c_str());

    for (unsigned penalty : {4u, 12u}) {
        core::CoreParams p = core::publicInfoA53();
        p.mispredictPenalty = penalty;
        core::InOrderCore sim(p);
        core::CoreStats stats = sim.run(replay);
        std::printf("mispredict penalty %2u -> CPI %.3f\n", penalty,
                    stats.cpi());
    }
    std::remove("cch.sift");

    // The same workflow, managed: the engine's TraceBank records each
    // registered instance once; evaluateModel() replays and caches.
    engine::EvalEngine eng(/*out_of_order=*/false);
    size_t instance = eng.addInstance(prog);
    for (unsigned penalty : {4u, 12u, 4u /* cache hit */}) {
        core::CoreParams p = core::publicInfoA53();
        p.mispredictPenalty = penalty;
        std::printf("engine: penalty %2u -> CPI %.3f\n", penalty,
                    eng.evaluateModel(p, instance).simCpi);
    }
    std::printf("%s\n", eng.stats().summary().c_str());
    return 0;
}
